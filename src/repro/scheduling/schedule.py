"""Schedule containers and the serial-resource timeline.

A :class:`ModeSchedule` is the inner loop's product for one operational
mode: start/end times for every task (with its core assignment on
hardware components) and for every inter-PE communication (with its link
choice).  :meth:`ModeSchedule.validate` re-checks all scheduling
invariants — precedence, data arrival, mutual exclusion per serial
resource — and is used heavily by the test suite.

:class:`ResourceTimeline` models one serial resource (a software
processor, one hardware core, one bus) as a set of booked intervals with
earliest-gap insertion.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.architecture.platform import Architecture
from repro.specification.mode import Mode

#: Numerical tolerance for overlap/precedence checks (seconds).
TIME_EPS = 1e-9


@dataclass(frozen=True)
class ScheduledTask:
    """One task instance placed in time on a resource.

    ``core_index`` identifies the core instance on hardware components
    (``None`` on software processors).  ``energy`` is the dynamic energy
    of this execution — nominal ``P_max · t_min`` before voltage scaling,
    the voltage-scaled value afterwards.  ``pieces`` records, for
    voltage-scaled executions, the ``(duration, voltage)`` segments the
    task runs through; hardware tasks on a shared rail may span several
    segments at different voltages.
    """

    name: str
    task_type: str
    pe: str
    start: float
    end: float
    energy: float
    power: float
    core_index: Optional[int] = None
    pieces: Tuple[Tuple[float, float], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start - TIME_EPS:
            raise SchedulingError(
                f"task {self.name!r}: end {self.end} before start {self.start}"
            )
        if self.energy < 0 or self.power < 0:
            raise SchedulingError(
                f"task {self.name!r}: negative energy or power"
            )


@dataclass(frozen=True)
class ScheduledComm:
    """One inter-PE message placed on a communication link.

    ``link`` is ``None`` for internal transfers (both endpoints on the
    same PE), which take zero time and energy.
    """

    src: str
    dst: str
    link: Optional[str]
    start: float
    end: float
    energy: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def __post_init__(self) -> None:
        if self.end < self.start - TIME_EPS:
            raise SchedulingError(
                f"comm {self.src!r}->{self.dst!r}: end before start"
            )
        if self.link is None and self.duration > TIME_EPS:
            raise SchedulingError(
                f"comm {self.src!r}->{self.dst!r}: internal transfer must "
                f"take zero time"
            )


class ResourceTimeline:
    """Booked intervals of one serial resource, with gap insertion.

    Bookings never overlap; :meth:`earliest_slot` returns the earliest
    start time ``>= ready`` at which an interval of the given duration
    fits, considering gaps between existing bookings.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._starts: List[float] = []
        self._ends: List[float] = []

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def intervals(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(zip(self._starts, self._ends))

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest feasible start ``>= ready`` for ``duration`` seconds."""
        if duration < 0:
            raise SchedulingError(
                f"resource {self.name!r}: negative duration {duration}"
            )
        candidate = ready
        # Find the first booking that could interfere with `candidate`.
        index = bisect.bisect_left(self._ends, candidate + TIME_EPS)
        while index < len(self._starts):
            gap_end = self._starts[index]
            if candidate + duration <= gap_end + TIME_EPS:
                return candidate
            candidate = max(candidate, self._ends[index])
            index += 1
        return candidate

    def book(self, start: float, duration: float) -> None:
        """Reserve ``[start, start+duration)``; must not overlap."""
        end = start + duration
        index = bisect.bisect_left(self._starts, start)
        if index > 0 and self._ends[index - 1] > start + TIME_EPS:
            raise SchedulingError(
                f"resource {self.name!r}: booking [{start}, {end}) overlaps "
                f"existing interval"
            )
        if index < len(self._starts) and self._starts[index] < end - TIME_EPS:
            raise SchedulingError(
                f"resource {self.name!r}: booking [{start}, {end}) overlaps "
                f"existing interval"
            )
        self._starts.insert(index, start)
        self._ends.insert(index, end)

    def next_free(self) -> float:
        """End of the last booking (0 if the resource is idle)."""
        return self._ends[-1] if self._ends else 0.0


class ModeSchedule:
    """The complete static schedule of one operational mode."""

    def __init__(
        self,
        mode_name: str,
        tasks: Iterable[ScheduledTask],
        comms: Iterable[ScheduledComm],
    ) -> None:
        self.mode_name = mode_name
        self._tasks: Dict[str, ScheduledTask] = {}
        for entry in tasks:
            if entry.name in self._tasks:
                raise SchedulingError(
                    f"schedule {mode_name!r}: task {entry.name!r} scheduled "
                    f"twice"
                )
            self._tasks[entry.name] = entry
        self._comms: Dict[Tuple[str, str], ScheduledComm] = {}
        for entry in comms:
            if entry.key in self._comms:
                raise SchedulingError(
                    f"schedule {mode_name!r}: comm {entry.key} scheduled twice"
                )
            self._comms[entry.key] = entry

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def tasks(self) -> Tuple[ScheduledTask, ...]:
        return tuple(self._tasks.values())

    @property
    def comms(self) -> Tuple[ScheduledComm, ...]:
        return tuple(self._comms.values())

    def task(self, name: str) -> ScheduledTask:
        try:
            return self._tasks[name]
        except KeyError:
            raise SchedulingError(
                f"schedule {self.mode_name!r}: task {name!r} not scheduled"
            ) from None

    def comm(self, src: str, dst: str) -> ScheduledComm:
        try:
            return self._comms[(src, dst)]
        except KeyError:
            raise SchedulingError(
                f"schedule {self.mode_name!r}: comm {src!r}->{dst!r} not "
                f"scheduled"
            ) from None

    def tasks_on(self, pe_name: str) -> Tuple[ScheduledTask, ...]:
        """Tasks placed on a given processing element, by start time."""
        placed = [t for t in self._tasks.values() if t.pe == pe_name]
        placed.sort(key=lambda t: (t.start, t.name))
        return tuple(placed)

    def comms_on(self, link_name: str) -> Tuple[ScheduledComm, ...]:
        """Messages carried by a given link, by start time."""
        placed = [c for c in self._comms.values() if c.link == link_name]
        placed.sort(key=lambda c: (c.start, c.key))
        return tuple(placed)

    @property
    def makespan(self) -> float:
        """Latest finish time over all activities."""
        latest = 0.0
        for task in self._tasks.values():
            latest = max(latest, task.end)
        for comm in self._comms.values():
            latest = max(latest, comm.end)
        return latest

    def total_dynamic_energy(self) -> float:
        """Sum of task and communication dynamic energies, in joules."""
        return sum(t.energy for t in self._tasks.values()) + sum(
            c.energy for c in self._comms.values()
        )

    def active_pes(self) -> Tuple[str, ...]:
        """PEs executing at least one task in this mode (sorted)."""
        return tuple(sorted({t.pe for t in self._tasks.values()}))

    def active_links(self) -> Tuple[str, ...]:
        """Links carrying at least one message in this mode (sorted)."""
        return tuple(
            sorted(
                {c.link for c in self._comms.values() if c.link is not None}
            )
        )

    # ------------------------------------------------------------------
    # Invariant checking
    # ------------------------------------------------------------------

    def validate(self, mode: Mode, architecture: Architecture) -> None:
        """Re-check every scheduling invariant; raise on violation.

        Checked invariants:

        * every task and every edge of the mode is scheduled exactly once;
        * precedence with data arrival: a task starts no earlier than the
          arrival of each incoming message, which itself starts no
          earlier than its producer finishes;
        * internal messages only between co-mapped tasks, external
          messages on a link that attaches both endpoint PEs;
        * mutual exclusion on software processors, per hardware core and
          per link.

        Deadline satisfaction is *not* an invariant here — infeasible
        schedules are legal objects (the GA penalises them); use
        :meth:`timing_violations` for deadline checks.
        """
        graph = mode.task_graph
        for task in graph:
            self.task(task.name)
        if len(self._tasks) != len(graph):
            extra = set(self._tasks) - set(graph.task_names)
            raise SchedulingError(
                f"schedule {self.mode_name!r}: unknown tasks {sorted(extra)}"
            )
        for edge in graph.edges:
            self.comm(edge.src, edge.dst)
        if len(self._comms) != len(graph.edges):
            extra = set(self._comms) - {e.key for e in graph.edges}
            raise SchedulingError(
                f"schedule {self.mode_name!r}: unknown comms {sorted(extra)}"
            )

        for edge in graph.edges:
            producer = self.task(edge.src)
            consumer = self.task(edge.dst)
            message = self.comm(edge.src, edge.dst)
            if message.start < producer.end - TIME_EPS:
                raise SchedulingError(
                    f"schedule {self.mode_name!r}: comm {edge.key} starts "
                    f"before producer finishes"
                )
            if consumer.start < message.end - TIME_EPS:
                raise SchedulingError(
                    f"schedule {self.mode_name!r}: task {edge.dst!r} starts "
                    f"before data arrival from {edge.src!r}"
                )
            if message.link is None:
                if producer.pe != consumer.pe:
                    raise SchedulingError(
                        f"schedule {self.mode_name!r}: comm {edge.key} marked "
                        f"internal but endpoints on {producer.pe!r} and "
                        f"{consumer.pe!r}"
                    )
            else:
                link = architecture.link(message.link)
                if not link.links_pair(producer.pe, consumer.pe):
                    raise SchedulingError(
                        f"schedule {self.mode_name!r}: comm {edge.key} uses "
                        f"link {message.link!r} that does not connect "
                        f"{producer.pe!r} and {consumer.pe!r}"
                    )

        for pe in architecture.pes:
            placed = self.tasks_on(pe.name)
            if not placed:
                continue
            if pe.is_software:
                _check_serial(placed, f"software PE {pe.name!r}")
            else:
                groups: Dict[Tuple[str, Optional[int]], List[ScheduledTask]]
                groups = {}
                for task in placed:
                    if task.core_index is None:
                        raise SchedulingError(
                            f"schedule {self.mode_name!r}: hardware task "
                            f"{task.name!r} lacks a core index"
                        )
                    groups.setdefault(
                        (task.task_type, task.core_index), []
                    ).append(task)
                for (task_type, core), tasks in groups.items():
                    _check_serial(
                        tasks,
                        f"core {task_type}#{core} on {pe.name!r}",
                    )
        for link in architecture.links:
            _check_serial(
                list(self.comms_on(link.name)), f"link {link.name!r}"
            )

    def timing_violations(
        self,
        mode: Mode,
        deadlines: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """Per-task deadline overshoot in seconds (only violating tasks).

        ``deadlines`` optionally supplies precomputed effective
        deadlines (``{task: seconds}``), saving the per-task graph walk
        on the synthesis hot path.
        """
        violations: Dict[str, float] = {}
        if deadlines is not None:
            tasks = self._tasks
            for name, deadline in deadlines.items():
                scheduled = tasks.get(name)
                if scheduled is None:
                    scheduled = self.task(name)
                overshoot = scheduled.end - deadline
                if overshoot > TIME_EPS:
                    violations[name] = overshoot
            return violations
        for task in mode.task_graph:
            scheduled = self.task(task.name)
            deadline = mode.effective_deadline(task.name)
            overshoot = scheduled.end - deadline
            if overshoot > TIME_EPS:
                violations[task.name] = overshoot
        return violations

    def is_timing_feasible(self, mode: Mode) -> bool:
        """True if no task misses its effective deadline."""
        return not self.timing_violations(mode)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModeSchedule({self.mode_name!r}, tasks={len(self._tasks)}, "
            f"comms={len(self._comms)}, makespan={self.makespan:.6g})"
        )


def _check_serial(activities: Sequence, resource: str) -> None:
    """Raise if any two activities on one serial resource overlap."""
    ordered = sorted(activities, key=lambda a: a.start)
    for earlier, later in zip(ordered, ordered[1:]):
        if later.start < earlier.end - TIME_EPS:
            raise SchedulingError(
                f"overlap on {resource}: [{earlier.start}, {earlier.end}) "
                f"and [{later.start}, {later.end})"
            )
