"""Mobility-driven list scheduling with greedy communication mapping.

This is the inner optimisation loop of the co-synthesis (paper Fig. 4,
line 10, following the LOPOCOS technique of ref. [12]).  For one
operational mode and a fixed task mapping it:

* chooses, for every inter-PE message, the attached link that delivers
  the data earliest (communication mapping ``M_γ``), and
* constructs a static schedule ``S_ε`` by processing tasks in ALAP
  (urgency) order, booking software processors, hardware core instances
  and links as serial resources with earliest-gap insertion.

Since modes are mutually exclusive, each mode is scheduled independently
with a single-mode technique — exactly the argument the paper makes.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.errors import SchedulingError
from repro.problem import Problem
from repro.scheduling.mobility import MobilityInfo, compute_mobilities
from repro.scheduling.schedule import (
    ModeSchedule,
    ResourceTimeline,
    ScheduledComm,
    ScheduledTask,
)
from repro.specification.mode import Mode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.decode_cache import DecodeContext
    from repro.mapping.cores import CoreAllocation


def schedule_mode(
    problem: Problem,
    mode: Mode,
    task_mapping: Mapping[str, str],
    cores: "CoreAllocation",
    mobilities: Optional[Mapping[str, MobilityInfo]] = None,
    context: Optional["DecodeContext"] = None,
) -> ModeSchedule:
    """Construct the static schedule of one mode under a task mapping.

    Parameters
    ----------
    problem:
        The co-synthesis instance (architecture + technology).
    mode:
        The operational mode to schedule.
    task_mapping:
        ``{task name: PE name}`` for every task of the mode.
    cores:
        Core allocation; bounds how many same-type hardware tasks can
        run in parallel on each component.
    mobilities:
        Optional precomputed mobility table for priority computation.
    context:
        Optional decode context with precomputed implementation tables,
        adjacency and feasible-link tables; the produced schedule is
        identical with and without it.

    Raises
    ------
    SchedulingError
        If a message must travel between two PEs that share no link
        (communication-infeasible mapping), or if the mapping misses a
        task.
    """
    graph = mode.task_graph
    technology = problem.technology
    architecture = problem.architecture
    mode_data = context.modes[mode.name] if context is not None else None

    exec_times: Dict[str, float] = {}
    powers: Dict[str, float] = {}
    if mode_data is not None:
        cached_times = mode_data.exec_times
        cached_powers = mode_data.powers
        for name in mode_data.task_names:
            try:
                pe_name = task_mapping[name]
            except KeyError:
                raise SchedulingError(
                    f"mode {mode.name!r}: no mapping for task {name!r}"
                ) from None
            exec_times[name] = cached_times[name][pe_name]
            powers[name] = cached_powers[name][pe_name]
        task_types = mode_data.task_types
        pe_objects = context.pes
        feasible_links = context.links_between
        predecessors = mode_data.predecessors
        successors = mode_data.successors
        in_edges = mode_data.in_edges
        graph_rank = mode_data.graph_rank
        task_names = mode_data.task_names
    else:
        for task in graph:
            try:
                pe_name = task_mapping[task.name]
            except KeyError:
                raise SchedulingError(
                    f"mode {mode.name!r}: no mapping for task {task.name!r}"
                ) from None
            entry = technology.implementation(task.task_type, pe_name)
            exec_times[task.name] = entry.exec_time
            powers[task.name] = entry.power
        task_types = {task.name: task.task_type for task in graph}
        pe_objects = {pe.name: pe for pe in architecture.pes}
        feasible_links = None
        predecessors = {
            name: graph.predecessors(name) for name in graph.task_names
        }
        successors = {
            name: graph.successors(name) for name in graph.task_names
        }
        in_edges = {name: graph.in_edges(name) for name in graph.task_names}
        graph_rank = {name: i for i, name in enumerate(graph.task_names)}
        task_names = graph.task_names

    if mobilities is None:
        mobilities = compute_mobilities(mode, lambda name: exec_times[name])

    pe_timelines: Dict[str, ResourceTimeline] = {}
    core_timelines: Dict[Tuple[str, str, int], ResourceTimeline] = {}
    link_timelines: Dict[str, ResourceTimeline] = {
        link.name: ResourceTimeline(link.name)
        for link in architecture.links
    }

    scheduled_tasks: Dict[str, ScheduledTask] = {}
    scheduled_comms: Dict[Tuple[str, str], ScheduledComm] = {}

    pending_preds = {
        name: len(predecessors[name]) for name in task_names
    }
    # Priority queue: most urgent (lowest ALAP) ready task first; ties
    # broken by graph order for determinism.
    ready: List[Tuple[float, int, str]] = []
    for name in task_names:
        if pending_preds[name] == 0:
            heapq.heappush(
                ready, (mobilities[name].alap, graph_rank[name], name)
            )

    processed = 0
    while ready:
        _, _, current = heapq.heappop(ready)
        processed += 1
        pe_name = task_mapping[current]
        pe = pe_objects[pe_name]

        # ------------------------------------------------------------
        # Communication mapping: route every incoming edge, earliest
        # arrival wins (greedy link choice with contention awareness).
        # ------------------------------------------------------------
        data_ready = 0.0
        for edge in in_edges[current]:
            producer = scheduled_tasks[edge.src]
            if producer.pe == pe_name:
                message = ScheduledComm(
                    src=edge.src,
                    dst=edge.dst,
                    link=None,
                    start=producer.end,
                    end=producer.end,
                    energy=0.0,
                )
            else:
                message = _route_message(
                    architecture,
                    link_timelines,
                    edge.src,
                    edge.dst,
                    producer.pe,
                    pe_name,
                    producer.end,
                    edge.data_bits,
                    mode.name,
                    candidates=(
                        feasible_links[(producer.pe, pe_name)]
                        if feasible_links is not None
                        else None
                    ),
                )
                link_timelines[message.link].book(
                    message.start, message.duration
                )
            scheduled_comms[edge.key] = message
            data_ready = max(data_ready, message.end)

        # ------------------------------------------------------------
        # Task placement on the execution resource.
        # ------------------------------------------------------------
        duration = exec_times[current]
        task_type = task_types[current]
        if pe.is_software:
            timeline = pe_timelines.setdefault(
                pe_name, ResourceTimeline(pe_name)
            )
            start = timeline.earliest_slot(data_ready, duration)
            timeline.book(start, duration)
            core_index: Optional[int] = None
        else:
            available = max(
                1, cores.available_cores(pe_name, mode.name, task_type)
            )
            best_start = None
            best_core = 0
            for core in range(available):
                timeline = core_timelines.setdefault(
                    (pe_name, task_type, core),
                    ResourceTimeline(f"{pe_name}/{task_type}#{core}"),
                )
                slot = timeline.earliest_slot(data_ready, duration)
                if best_start is None or slot < best_start:
                    best_start = slot
                    best_core = core
            start = best_start if best_start is not None else data_ready
            core_timelines[(pe_name, task_type, best_core)].book(
                start, duration
            )
            core_index = best_core

        scheduled_tasks[current] = ScheduledTask(
            name=current,
            task_type=task_type,
            pe=pe_name,
            start=start,
            end=start + duration,
            energy=powers[current] * duration,
            power=powers[current],
            core_index=core_index,
        )

        for succ in successors[current]:
            pending_preds[succ] -= 1
            if pending_preds[succ] == 0:
                heapq.heappush(
                    ready,
                    (mobilities[succ].alap, graph_rank[succ], succ),
                )

    if processed != len(graph):
        # Cannot happen for a validated (acyclic) task graph, but guards
        # against future model changes.
        raise SchedulingError(
            f"mode {mode.name!r}: scheduler processed {processed} of "
            f"{len(graph)} tasks"
        )

    return ModeSchedule(
        mode.name, scheduled_tasks.values(), scheduled_comms.values()
    )


def _route_message(
    architecture,
    link_timelines: Dict[str, ResourceTimeline],
    src_task: str,
    dst_task: str,
    src_pe: str,
    dst_pe: str,
    ready: float,
    data_bits: float,
    mode_name: str,
    candidates=None,
) -> ScheduledComm:
    """Pick the link delivering the message earliest and build the entry."""
    if candidates is None:
        candidates = architecture.links_between(src_pe, dst_pe)
    if not candidates:
        raise SchedulingError(
            f"mode {mode_name!r}: no communication link between "
            f"{src_pe!r} and {dst_pe!r} for message "
            f"{src_task!r}->{dst_task!r}"
        )
    best: Optional[Tuple[float, float, str, float]] = None
    for link in candidates:
        duration = link.transfer_time(data_bits)
        slot = link_timelines[link.name].earliest_slot(ready, duration)
        arrival = slot + duration
        key = (arrival, slot, link.name, duration)
        if best is None or key < best:
            best = key
    arrival, slot, link_name, duration = best
    link = architecture.link(link_name)
    return ScheduledComm(
        src=src_task,
        dst=dst_task,
        link=link_name,
        start=slot,
        end=arrival,
        energy=link.comm_power * duration,
    )
