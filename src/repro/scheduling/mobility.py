"""ASAP/ALAP analysis and task mobilities.

Mobility — the difference between a task's as-late-as-possible and
as-soon-as-possible start times — measures scheduling freedom.  The
outer synthesis loop uses it twice (paper Fig. 4, lines 4–5): tasks with
*low* mobility sit on the critical path, so parallel low-mobility tasks
of the same type are the ones for which allocating an extra hardware
core pays off, and the list scheduler prioritises low-mobility (urgent)
tasks.

The analysis here deliberately ignores communication delays and resource
contention: it is a lower-bound dataflow analysis over the task graph
with the execution times implied by the current mapping, exactly what a
mapping-level heuristic needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import SchedulingError
from repro.specification.mode import Mode


@dataclass(frozen=True)
class MobilityInfo:
    """ASAP/ALAP start times and mobility for one task."""

    asap: float
    alap: float

    @property
    def mobility(self) -> float:
        """Scheduling freedom ``ALAP − ASAP`` (0 on the critical path)."""
        return self.alap - self.asap


def compute_mobilities(
    mode: Mode,
    exec_time: Callable[[str], float],
) -> Dict[str, MobilityInfo]:
    """ASAP/ALAP schedule of one mode's task graph.

    Parameters
    ----------
    mode:
        The operational mode to analyse.
    exec_time:
        Maps a task name to its execution time under the current
        mapping (nominal voltage).

    Returns
    -------
    dict
        Task name → :class:`MobilityInfo`.  ALAP times honour both the
        mode period and individual task deadlines.  When the graph's
        critical path exceeds a deadline, mobilities become negative —
        callers treat that as a timing-infeasibility signal rather than
        an error.
    """
    graph = mode.task_graph
    order = graph.topological_order()
    durations = {}
    for name in order:
        duration = exec_time(name)
        if duration < 0:
            raise SchedulingError(
                f"mode {mode.name!r}: negative execution time for "
                f"task {name!r}"
            )
        durations[name] = duration

    asap: Dict[str, float] = {}
    for name in order:
        arrival = 0.0
        for pred in graph.predecessors(name):
            arrival = max(arrival, asap[pred] + durations[pred])
        asap[name] = arrival

    alap: Dict[str, float] = {}
    for name in reversed(order):
        latest_finish = mode.effective_deadline(name)
        for succ in graph.successors(name):
            latest_finish = min(latest_finish, alap[succ])
        alap[name] = latest_finish - durations[name]

    return {
        name: MobilityInfo(asap=asap[name], alap=alap[name]) for name in order
    }


def critical_path_length(
    mode: Mode, exec_time: Callable[[str], float]
) -> float:
    """Length of the longest dataflow path (ignoring communication)."""
    graph = mode.task_graph
    finish: Dict[str, float] = {}
    for name in graph.topological_order():
        arrival = 0.0
        for pred in graph.predecessors(name):
            arrival = max(arrival, finish[pred])
        finish[name] = arrival + exec_time(name)
    return max(finish.values(), default=0.0)
