"""Per-mode communication mapping and scheduling (the inner loop).

Given a task mapping for one operational mode, the list scheduler
(following the LOPOCOS technique, paper ref. [12]) chooses a link for
every inter-PE message and constructs a static schedule: tasks on
software processors are serialised, tasks on hardware components run in
parallel across cores but are serialised on each core, and bus transfers
are serialised per link.  Mobility analysis (ASAP/ALAP) provides both
the scheduling priorities and the parallelism hints used by the core
allocator.
"""

from repro.scheduling.mobility import MobilityInfo, compute_mobilities
from repro.scheduling.schedule import (
    ModeSchedule,
    ResourceTimeline,
    ScheduledComm,
    ScheduledTask,
)
from repro.scheduling.list_scheduler import schedule_mode

__all__ = [
    "MobilityInfo",
    "ModeSchedule",
    "ResourceTimeline",
    "ScheduledComm",
    "ScheduledTask",
    "compute_mobilities",
    "schedule_mode",
]
