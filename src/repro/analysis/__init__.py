"""Experiment drivers and reporting for the paper's tables.

:mod:`repro.analysis.experiments` runs the with/without-probability
comparisons of Tables 1–3 (averaging several optimisation runs, as the
paper averages 40); :mod:`repro.analysis.reporting` renders the results
in the paper's table layout and next to the paper's own numbers
(:mod:`repro.analysis.paper_data`).
"""

from repro.analysis.experiments import (
    ComparisonResult,
    compare_policies,
    run_smartphone_experiment,
    run_suite_experiment,
)
from repro.analysis.reporting import (
    format_comparison_table,
    format_paper_comparison,
)

__all__ = [
    "ComparisonResult",
    "compare_policies",
    "format_comparison_table",
    "format_paper_comparison",
    "run_smartphone_experiment",
    "run_suite_experiment",
]
