"""Text Gantt rendering of mode schedules.

Turns a :class:`~repro.scheduling.schedule.ModeSchedule` into an ASCII
timeline — one row per execution resource (software PE, hardware core,
communication link) — so mapping and contention decisions can be read
at a glance in a terminal or a log file::

    CPU            |ssss------jjjj|
    HW/P#0         |----aaaabbbb--|
    BUS            |----xx--yy----|

Each column is one time quantum; task rows use the first letter of the
task name (capitalised on the start column), idle time is ``-``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.architecture.platform import Architecture
from repro.scheduling.schedule import ModeSchedule


def render_gantt(
    schedule: ModeSchedule,
    architecture: Architecture,
    width: int = 72,
    label_width: int = 18,
) -> str:
    """Render one mode's schedule as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        The (possibly voltage-scaled) schedule to draw.
    architecture:
        Supplies the resource rows (PEs, cores, links).
    width:
        Number of time columns.
    label_width:
        Width of the row-label column.
    """
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    scale = width / makespan

    def row_for(intervals: List[Tuple[float, float, str]]) -> str:
        cells = ["-"] * width
        for start, end, glyph in intervals:
            first = min(width - 1, int(start * scale))
            last = min(width - 1, max(first, int(end * scale) - 1))
            for column in range(first, last + 1):
                cells[column] = glyph.lower()
            cells[first] = glyph.upper()
        return "".join(cells)

    lines: List[str] = [
        f"mode {schedule.mode_name!r}: makespan "
        f"{makespan * 1e3:.3f} ms, one column = "
        f"{makespan / width * 1e3:.3f} ms"
    ]

    for pe in architecture.pes:
        placed = schedule.tasks_on(pe.name)
        if not placed:
            continue
        if pe.is_software:
            intervals = [
                (task.start, task.end, task.name[0]) for task in placed
            ]
            lines.append(
                f"{pe.name:<{label_width}}|{row_for(intervals)}|"
            )
        else:
            by_core: Dict[Tuple[str, Optional[int]], List] = {}
            for task in placed:
                by_core.setdefault(
                    (task.task_type, task.core_index), []
                ).append(task)
            for (task_type, core), tasks in sorted(by_core.items()):
                intervals = [
                    (task.start, task.end, task.name[0])
                    for task in tasks
                ]
                label = f"{pe.name}/{task_type}#{core}"
                lines.append(
                    f"{label:<{label_width}}|{row_for(intervals)}|"
                )

    for link in architecture.links:
        carried = schedule.comms_on(link.name)
        if not carried:
            continue
        intervals = [
            (comm.start, comm.end, comm.src[0]) for comm in carried
        ]
        lines.append(
            f"{link.name:<{label_width}}|{row_for(intervals)}|"
        )

    return "\n".join(lines)


def render_all_modes(
    schedules: Dict[str, ModeSchedule],
    architecture: Architecture,
    width: int = 72,
) -> str:
    """Render every mode of an implementation, separated by blank lines."""
    blocks = [
        render_gantt(schedule, architecture, width=width)
        for _, schedule in sorted(schedules.items())
    ]
    return "\n\n".join(blocks)
