"""Experiment drivers: the with/without-probability comparisons.

Each comparison runs the co-synthesis twice per repetition — once with
the probability-neglecting fitness, once with the proposed
probability-aware fitness — and averages the resulting true-probability
powers over the repetitions, exactly the protocol behind the paper's
Tables 1–3 (the paper averages 40 runs; the repetition count here is a
parameter so test suites stay fast).

Since PR 2 the drivers are thin wrappers over the campaign runtime
(:mod:`repro.runtime`): every comparison expands to a
:class:`~repro.runtime.spec.CampaignSpec`, executes on the
:class:`~repro.runtime.runner.CampaignRunner` (durable checkpoints,
bounded retry, JSONL events) and aggregates the per-job results.  Pass
``run_dir`` to keep the run directory — re-invoking with the same
directory resumes instead of recomputing — or leave it ``None`` for a
throw-away temporary directory.
"""

from __future__ import annotations

import statistics
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.benchgen.smartphone import smartphone_problem
from repro.benchgen.suite import SUITE_SPECS
from repro.errors import CampaignError
from repro.problem import Problem
from repro.runtime.runner import CampaignRunner, JobResult, PathLike
from repro.runtime.spec import CampaignSpec
from repro.synthesis.config import DvsMethod, SynthesisConfig


@dataclass
class PolicyOutcome:
    """Aggregated runs of one probability policy on one instance."""

    powers: List[float] = field(default_factory=list)
    cpu_times: List[float] = field(default_factory=list)
    feasible: List[bool] = field(default_factory=list)

    @property
    def feasible_runs(self) -> int:
        return sum(self.feasible)

    @property
    def mean_power(self) -> float:
        """Average power over the *feasible* runs.

        An infeasible candidate's power is meaningless (it may be
        arbitrarily low by violating constraints), so runs that ended
        infeasible are excluded — the paper reports implementations,
        i.e. feasible solutions.  Falls back to all runs only when no
        run was feasible.
        """
        chosen = [
            p for p, ok in zip(self.powers, self.feasible) if ok
        ]
        if not chosen:
            chosen = self.powers
        return statistics.mean(chosen)

    @property
    def mean_cpu_time(self) -> float:
        return statistics.mean(self.cpu_times)

    @property
    def power_stdev(self) -> float:
        chosen = [
            p for p, ok in zip(self.powers, self.feasible) if ok
        ] or self.powers
        if len(chosen) < 2:
            return 0.0
        return statistics.stdev(chosen)

    def add(self, power: float, cpu_time: float, feasible: bool) -> None:
        self.powers.append(power)
        self.cpu_times.append(cpu_time)
        self.feasible.append(feasible)


@dataclass
class ComparisonResult:
    """Result of comparing the two policies on one instance.

    Mirrors one row of the paper's Tables 1/2: average power and CPU
    time for the probability-neglecting and the proposed approach, plus
    the relative reduction.
    """

    example: str
    modes: int
    without: PolicyOutcome
    with_probabilities: PolicyOutcome
    runs: int

    @property
    def reduction_pct(self) -> float:
        """Power reduction achieved by considering probabilities (%)."""
        baseline = self.without.mean_power
        if baseline <= 0:
            return 0.0
        return 100.0 * (baseline - self.with_probabilities.mean_power) / (
            baseline
        )


def comparison_from_job_results(
    results: Sequence[JobResult],
    example: Optional[str] = None,
    modes: Optional[int] = None,
) -> ComparisonResult:
    """Fold one instance's job results into a Table-1/2 row.

    ``results`` must all belong to the same instance (and DVS method);
    runs of each policy are ordered by seed so the aggregation is
    independent of the execution order.
    """
    if not results:
        raise CampaignError("no job results to aggregate")
    instances = {r.instance for r in results}
    if len(instances) != 1:
        raise CampaignError(
            f"job results span several instances: {sorted(instances)}"
        )
    without = PolicyOutcome()
    with_probabilities = PolicyOutcome()
    for result in sorted(results, key=lambda r: r.seed):
        outcome = (
            with_probabilities if result.use_probabilities else without
        )
        outcome.add(result.power, result.cpu_time, result.feasible)
    return ComparisonResult(
        example=example if example is not None else results[0].instance,
        modes=modes if modes is not None else results[0].modes,
        without=without,
        with_probabilities=with_probabilities,
        runs=max(len(without.powers), len(with_probabilities.powers)),
    )


def _run_comparison_campaign(
    spec: CampaignSpec,
    run_dir: Optional[PathLike],
    problem_loader: Optional[Callable[[str], Problem]] = None,
) -> List[JobResult]:
    """Execute ``spec`` (in a temp dir unless one is given).

    A job failure in a comparison campaign invalidates the paired
    aggregate, so failures raise instead of being summarised away.
    """

    def execute(directory: PathLike) -> List[JobResult]:
        outcome = CampaignRunner(
            spec, directory, problem_loader=problem_loader
        ).run()
        if outcome.failures:
            raise CampaignError(
                f"{len(outcome.failures)} campaign job(s) failed: "
                f"{outcome.failures}"
            )
        return outcome.job_results()

    if run_dir is not None:
        return execute(run_dir)
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
        return execute(tmp)


def compare_policies(
    problem: Problem,
    config: Optional[SynthesisConfig] = None,
    runs: int = 5,
    base_seed: int = 0,
    run_dir: Optional[PathLike] = None,
) -> ComparisonResult:
    """Run both probability policies ``runs`` times and aggregate.

    Run ``i`` of both policies shares seed ``base_seed + i`` so the
    comparison is paired: both GAs start from the same initial
    population and differ only in the fitness weighting.
    """
    if config is None:
        config = SynthesisConfig()
    spec = CampaignSpec(
        name=f"compare-{problem.name}",
        instances=[problem.name],
        dvs_methods=[config.dvs],
        probability_settings=[False, True],
        runs=runs,
        base_seed=base_seed,
        config=config,
    )
    results = _run_comparison_campaign(
        spec, run_dir, problem_loader=lambda name: problem
    )
    return comparison_from_job_results(
        results, example=problem.name, modes=len(problem.omsm)
    )


def run_suite_experiment(
    dvs: DvsMethod = DvsMethod.NONE,
    runs: int = 5,
    config: Optional[SynthesisConfig] = None,
    examples: Optional[Sequence[str]] = None,
    base_seed: int = 400,
    run_dir: Optional[PathLike] = None,
) -> List[ComparisonResult]:
    """Tables 1 and 2: the with/without-Ψ comparison over mul1–mul12.

    ``dvs=DvsMethod.NONE`` reproduces Table 1,
    ``dvs=DvsMethod.GRADIENT`` Table 2.
    """
    if config is None:
        config = SynthesisConfig()
    config = config.with_updates(dvs=dvs)
    instances = [
        spec.name
        for spec in SUITE_SPECS
        if examples is None or spec.name in examples
    ]
    spec = CampaignSpec(
        name=f"suite-{dvs.value}",
        instances=instances,
        dvs_methods=[dvs],
        probability_settings=[False, True],
        runs=runs,
        base_seed=base_seed,
        config=config,
    )
    job_results = _run_comparison_campaign(spec, run_dir)
    by_instance: Dict[str, List[JobResult]] = {}
    for result in job_results:
        by_instance.setdefault(result.instance, []).append(result)
    return [
        comparison_from_job_results(by_instance[name])
        for name in instances
    ]


def run_smartphone_experiment(
    runs: int = 3,
    config: Optional[SynthesisConfig] = None,
    base_seed: int = 400,
    run_dir: Optional[PathLike] = None,
) -> Dict[str, ComparisonResult]:
    """Table 3: the smart phone, without and with DVS."""
    if config is None:
        config = SynthesisConfig()
    spec = CampaignSpec(
        name="smartphone",
        instances=["smartphone"],
        dvs_methods=[DvsMethod.NONE, DvsMethod.GRADIENT],
        probability_settings=[False, True],
        runs=runs,
        base_seed=base_seed,
        config=config,
    )
    job_results = _run_comparison_campaign(
        spec, run_dir, problem_loader=lambda name: smartphone_problem()
    )
    by_dvs: Dict[str, List[JobResult]] = {}
    for result in job_results:
        by_dvs.setdefault(result.dvs, []).append(result)
    return {
        "w/o DVS": comparison_from_job_results(
            by_dvs.get(DvsMethod.NONE.value, [])
        ),
        "with DVS": comparison_from_job_results(
            by_dvs.get(DvsMethod.GRADIENT.value, [])
        ),
    }
