"""Experiment drivers: the with/without-probability comparisons.

Each comparison runs the co-synthesis twice per repetition — once with
the probability-neglecting fitness, once with the proposed
probability-aware fitness — and averages the resulting true-probability
powers over the repetitions, exactly the protocol behind the paper's
Tables 1–3 (the paper averages 40 runs; the repetition count here is a
parameter so test suites stay fast).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.benchgen.smartphone import smartphone_problem
from repro.benchgen.suite import SUITE_SPECS, generate_problem
from repro.problem import Problem
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer
from repro.validation import validate_implementation


@dataclass
class PolicyOutcome:
    """Aggregated runs of one probability policy on one instance."""

    powers: List[float] = field(default_factory=list)
    cpu_times: List[float] = field(default_factory=list)
    feasible: List[bool] = field(default_factory=list)

    @property
    def feasible_runs(self) -> int:
        return sum(self.feasible)

    @property
    def mean_power(self) -> float:
        """Average power over the *feasible* runs.

        An infeasible candidate's power is meaningless (it may be
        arbitrarily low by violating constraints), so runs that ended
        infeasible are excluded — the paper reports implementations,
        i.e. feasible solutions.  Falls back to all runs only when no
        run was feasible.
        """
        chosen = [
            p for p, ok in zip(self.powers, self.feasible) if ok
        ]
        if not chosen:
            chosen = self.powers
        return statistics.mean(chosen)

    @property
    def mean_cpu_time(self) -> float:
        return statistics.mean(self.cpu_times)

    @property
    def power_stdev(self) -> float:
        chosen = [
            p for p, ok in zip(self.powers, self.feasible) if ok
        ] or self.powers
        if len(chosen) < 2:
            return 0.0
        return statistics.stdev(chosen)


@dataclass
class ComparisonResult:
    """Result of comparing the two policies on one instance.

    Mirrors one row of the paper's Tables 1/2: average power and CPU
    time for the probability-neglecting and the proposed approach, plus
    the relative reduction.
    """

    example: str
    modes: int
    without: PolicyOutcome
    with_probabilities: PolicyOutcome
    runs: int

    @property
    def reduction_pct(self) -> float:
        """Power reduction achieved by considering probabilities (%)."""
        baseline = self.without.mean_power
        if baseline <= 0:
            return 0.0
        return 100.0 * (baseline - self.with_probabilities.mean_power) / (
            baseline
        )


def compare_policies(
    problem: Problem,
    config: Optional[SynthesisConfig] = None,
    runs: int = 5,
    base_seed: int = 0,
) -> ComparisonResult:
    """Run both probability policies ``runs`` times and aggregate.

    Run ``i`` of both policies shares seed ``base_seed + i`` so the
    comparison is paired: both GAs start from the same initial
    population and differ only in the fitness weighting.
    """
    if config is None:
        config = SynthesisConfig()
    without = PolicyOutcome()
    with_probabilities = PolicyOutcome()
    for run in range(runs):
        for use_probabilities, outcome in (
            (False, without),
            (True, with_probabilities),
        ):
            run_config = config.with_updates(
                use_probabilities=use_probabilities,
                seed=base_seed + run,
            )
            result = MultiModeSynthesizer(problem, run_config).run()
            validate_implementation(result.best)
            outcome.powers.append(result.average_power)
            outcome.cpu_times.append(result.cpu_time)
            outcome.feasible.append(result.is_feasible)
    return ComparisonResult(
        example=problem.name,
        modes=len(problem.omsm),
        without=without,
        with_probabilities=with_probabilities,
        runs=runs,
    )


def run_suite_experiment(
    dvs: DvsMethod = DvsMethod.NONE,
    runs: int = 5,
    config: Optional[SynthesisConfig] = None,
    examples: Optional[Sequence[str]] = None,
    base_seed: int = 400,
) -> List[ComparisonResult]:
    """Tables 1 and 2: the with/without-Ψ comparison over mul1–mul12.

    ``dvs=DvsMethod.NONE`` reproduces Table 1,
    ``dvs=DvsMethod.GRADIENT`` Table 2.
    """
    if config is None:
        config = SynthesisConfig()
    config = config.with_updates(dvs=dvs)
    results = []
    for spec in SUITE_SPECS:
        if examples is not None and spec.name not in examples:
            continue
        problem = generate_problem(spec)
        results.append(
            compare_policies(
                problem, config, runs=runs, base_seed=base_seed
            )
        )
    return results


def run_smartphone_experiment(
    runs: int = 3,
    config: Optional[SynthesisConfig] = None,
    base_seed: int = 400,
) -> Dict[str, ComparisonResult]:
    """Table 3: the smart phone, without and with DVS."""
    if config is None:
        config = SynthesisConfig()
    problem = smartphone_problem()
    return {
        "w/o DVS": compare_policies(
            problem,
            config.with_updates(dvs=DvsMethod.NONE),
            runs=runs,
            base_seed=base_seed,
        ),
        "with DVS": compare_policies(
            problem,
            config.with_updates(dvs=DvsMethod.GRADIENT),
            runs=runs,
            base_seed=base_seed,
        ),
    }
