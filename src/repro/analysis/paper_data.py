"""The numbers published in the paper's Tables 1–3.

Used for side-by-side reporting only — our regenerated benchmark
instances are structurally equivalent but not identical to the
(unpublished) originals, so absolute powers are not expected to match;
the *shape* (probability-aware wins, reduction magnitudes, DVS effect,
CPU-time trend) is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PaperRow:
    """One row of Table 1 or Table 2 as printed in the paper."""

    example: str
    modes: int
    power_without_mw: float
    cpu_without_s: float
    power_with_mw: float
    cpu_with_s: float
    reduction_pct: float


#: Table 1 — considering execution probabilities (without DVS).
TABLE1: Tuple[PaperRow, ...] = (
    PaperRow("mul1", 4, 8.131, 20.7, 7.529, 24.7, 7.29),
    PaperRow("mul2", 4, 3.404, 15.5, 2.771, 18.2, 18.61),
    PaperRow("mul3", 5, 10.923, 23.4, 10.430, 23.0, 4.17),
    PaperRow("mul4", 5, 7.975, 21.0, 6.726, 25.2, 15.50),
    PaperRow("mul5", 3, 5.186, 18.4, 4.668, 22.1, 10.01),
    PaperRow("mul6", 4, 1.677, 20.6, 1.301, 19.9, 22.46),
    PaperRow("mul7", 4, 3.306, 11.6, 1.250, 21.4, 62.18),
    PaperRow("mul8", 4, 1.565, 32.1, 1.329, 28.0, 15.06),
    PaperRow("mul9", 4, 3.081, 6.0, 1.901, 5.8, 38.28),
    PaperRow("mul10", 5, 1.105, 28.3, 0.941, 32.1, 14.83),
    PaperRow("mul11", 3, 2.199, 9.3, 1.304, 16.6, 40.70),
    PaperRow("mul12", 4, 7.006, 25.4, 5.975, 34.2, 14.69),
)

#: Table 2 — with DVS.
TABLE2: Tuple[PaperRow, ...] = (
    PaperRow("mul1", 4, 4.271, 526.6, 3.964, 768.6, 10.92),
    PaperRow("mul2", 4, 1.568, 860.4, 1.273, 687.4, 18.82),
    PaperRow("mul3", 5, 4.012, 1053.5, 3.344, 1192.2, 16.66),
    PaperRow("mul4", 5, 2.914, 1135.2, 2.320, 1125.4, 20.39),
    PaperRow("mul5", 3, 1.394, 967.7, 1.315, 932.1, 5.68),
    PaperRow("mul6", 4, 0.689, 472.9, 0.465, 593.7, 32.53),
    PaperRow("mul7", 4, 1.331, 540.3, 0.479, 820.7, 64.02),
    PaperRow("mul8", 4, 0.564, 1262.1, 0.436, 1412.0, 22.64),
    PaperRow("mul9", 4, 0.942, 161.2, 0.648, 177.1, 34.66),
    PaperRow("mul10", 5, 0.480, 1456.3, 0.394, 1361.9, 17.88),
    PaperRow("mul11", 3, 0.396, 318.1, 0.255, 403.2, 35.53),
    PaperRow("mul12", 4, 2.857, 1384.7, 2.460, 1450.7, 13.91),
)

#: Table 3 — smart phone: {row: (P w/o Ψ, CPU w/o, P with Ψ, CPU with, %)}.
TABLE3: Dict[str, Tuple[float, float, float, float, float]] = {
    "w/o DVS": (2.602, 80.1, 1.801, 96.9, 30.76),
    "with DVS": (1.217, 3754.5, 0.859, 4344.8, 29.41),
}

#: Fig. 2 motivational example: energies of the two mappings (mW·s).
FIG2_ENERGY_WITHOUT_PROBABILITIES = 26.7158e-3
FIG2_ENERGY_WITH_PROBABILITIES = 15.7423e-3
FIG2_REDUCTION_PCT = 41.0

#: Headline claims.
MAX_REDUCTION_NO_DVS_PCT = 62.18
MAX_REDUCTION_DVS_PCT = 64.02
SMARTPHONE_OVERALL_REDUCTION_PCT = 67.0


def table1_row(example: str) -> PaperRow:
    """Look up a Table 1 row by benchmark name."""
    for row in TABLE1:
        if row.example == example:
            return row
    raise KeyError(f"no Table 1 row for {example!r}")


def table2_row(example: str) -> PaperRow:
    """Look up a Table 2 row by benchmark name."""
    for row in TABLE2:
        if row.example == example:
            return row
    raise KeyError(f"no Table 2 row for {example!r}")
