"""Rendering experiment results in the paper's table layout.

Results arrive either live (the :class:`ComparisonResult` aggregates
the experiment drivers return) or *post hoc* from a campaign run
directory: :func:`results_from_events` rebuilds the same aggregates
from the structured ``events.jsonl`` stream alone, so a finished (or
crashed) campaign can be re-reported without re-running anything.
"""

from __future__ import annotations

import pathlib
import statistics
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Union

from repro.analysis.experiments import ComparisonResult, PolicyOutcome
from repro.analysis.paper_data import PaperRow


def format_comparison_table(
    results: Sequence[ComparisonResult],
    title: str = "Considering Execution Probabilities",
) -> str:
    """The Tables-1/2 layout: example, power/CPU per policy, reduction."""
    header = (
        f"{'Example':<14}{'P w/o Ψ (mW)':>14}{'CPU (s)':>10}"
        f"{'P with Ψ (mW)':>15}{'CPU (s)':>10}{'Reduc. (%)':>12}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.example + f' ({result.modes})':<14}"
            f"{result.without.mean_power * 1e3:>14.3f}"
            f"{result.without.mean_cpu_time:>10.1f}"
            f"{result.with_probabilities.mean_power * 1e3:>15.3f}"
            f"{result.with_probabilities.mean_cpu_time:>10.1f}"
            f"{result.reduction_pct:>12.2f}"
        )
    if results:
        reductions = [r.reduction_pct for r in results]
        lines.append("-" * len(header))
        lines.append(
            f"{'average':<14}{'':>14}{'':>10}{'':>15}{'':>10}"
            f"{statistics.mean(reductions):>12.2f}"
        )
    return "\n".join(lines)


def format_paper_comparison(
    results: Sequence[ComparisonResult],
    paper_rows: Dict[str, PaperRow],
    title: str = "Reproduction vs paper",
) -> str:
    """Reduction-percent comparison against the published rows.

    Absolute powers are not comparable (our instances are regenerated),
    so the side-by-side focuses on the quantity the paper's claim rests
    on: the relative reduction from considering probabilities.
    """
    header = (
        f"{'Example':<10}{'paper reduc. (%)':>18}{'ours reduc. (%)':>18}"
        f"{'paper P-ratio':>15}{'ours P-ratio':>15}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    ours_reductions: List[float] = []
    paper_reductions: List[float] = []
    for result in results:
        row = paper_rows.get(result.example)
        if row is None:
            continue
        paper_ratio = row.power_with_mw / row.power_without_mw
        ours_ratio = (
            result.with_probabilities.mean_power
            / result.without.mean_power
        )
        ours_reductions.append(result.reduction_pct)
        paper_reductions.append(row.reduction_pct)
        lines.append(
            f"{result.example:<10}{row.reduction_pct:>18.2f}"
            f"{result.reduction_pct:>18.2f}"
            f"{paper_ratio:>15.3f}{ours_ratio:>15.3f}"
        )
    if ours_reductions:
        lines.append("-" * len(header))
        lines.append(
            f"{'average':<10}{statistics.mean(paper_reductions):>18.2f}"
            f"{statistics.mean(ours_reductions):>18.2f}{'':>15}{'':>15}"
        )
    return "\n".join(lines)


def format_smartphone_table(
    results: Dict[str, ComparisonResult],
    title: str = "Results of Smart Phone Experiments",
) -> str:
    """The Table-3 layout (two rows: w/o DVS, with DVS)."""
    header = (
        f"{'Smart phone':<12}{'P w/o Ψ (mW)':>14}{'CPU (s)':>10}"
        f"{'P with Ψ (mW)':>15}{'CPU (s)':>10}{'Reduc. (%)':>12}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for label in ("w/o DVS", "with DVS"):
        result = results.get(label)
        if result is None:
            continue
        lines.append(
            f"{label:<12}"
            f"{result.without.mean_power * 1e3:>14.3f}"
            f"{result.without.mean_cpu_time:>10.1f}"
            f"{result.with_probabilities.mean_power * 1e3:>15.3f}"
            f"{result.with_probabilities.mean_cpu_time:>10.1f}"
            f"{result.reduction_pct:>12.2f}"
        )
    both = [results.get("w/o DVS"), results.get("with DVS")]
    if all(both):
        overall = 100.0 * (
            1.0
            - both[1].with_probabilities.mean_power
            / both[0].without.mean_power
        )
        lines.append("-" * len(header))
        lines.append(
            f"overall reduction (fixed voltage, no Ψ  →  DVS + Ψ): "
            f"{overall:.1f}%"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Re-aggregation from the campaign event stream
# ----------------------------------------------------------------------


def results_from_events(
    events: Union[str, pathlib.Path, Iterable[Mapping[str, Any]]],
) -> List[ComparisonResult]:
    """Rebuild Table-1/2/3 aggregates from ``job_finished`` events.

    ``events`` is either a path to an ``events.jsonl`` stream or an
    already-loaded event sequence.  Jobs are grouped per (instance,
    DVS method) in first-appearance order; within a group the runs of
    each policy are ordered by seed, matching the live aggregation of
    :mod:`repro.analysis.experiments` exactly.  When a campaign swept
    several DVS methods, the row label carries the method
    (``"smartphone [gradient]"``) so the rows stay distinguishable.
    """
    if isinstance(events, (str, pathlib.Path)):
        from repro.runtime.events import iter_events

        events = iter_events(events)
    finished = [e for e in events if e.get("event") == "job_finished"]
    groups: Dict[tuple, List[Mapping[str, Any]]] = {}
    for event in finished:
        groups.setdefault((event["instance"], event["dvs"]), []).append(
            event
        )
    dvs_methods = {dvs for _, dvs in groups}
    results: List[ComparisonResult] = []
    for (instance, dvs), group in groups.items():
        without = PolicyOutcome()
        with_probabilities = PolicyOutcome()
        for event in sorted(group, key=lambda e: e["seed"]):
            outcome = (
                with_probabilities
                if event["use_probabilities"]
                else without
            )
            outcome.add(
                event["power"], event["cpu_time"], event["feasible"]
            )
        example = (
            instance if len(dvs_methods) == 1 else f"{instance} [{dvs}]"
        )
        results.append(
            ComparisonResult(
                example=example,
                modes=group[0]["modes"],
                without=without,
                with_probabilities=with_probabilities,
                runs=max(
                    len(without.powers), len(with_probabilities.powers)
                ),
            )
        )
    return results
