"""Battery lifetime estimation for synthesised implementations.

The paper motivates probability-aware synthesis with "prolonged battery
life-time"; this module turns the average-power results into that
user-facing number.  Two models are provided:

* the ideal linear model — lifetime = capacity / average power — which
  is what Equation (1) implies directly, and
* Peukert's law, the standard first-order correction for the fact that
  real batteries deliver less charge at higher discharge currents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError


@dataclass(frozen=True)
class Battery:
    """A battery described by capacity, voltage and Peukert exponent.

    Parameters
    ----------
    capacity_mah:
        Rated capacity in milliampere-hours at the rated current.
    voltage:
        Nominal terminal voltage in volts.
    peukert_exponent:
        Peukert constant ``k`` (1.0 = ideal; lithium cells ≈ 1.05,
        lead-acid ≈ 1.2).
    rated_hours:
        Discharge duration at which the capacity is rated (the ``C``
        rate reference), in hours.
    """

    capacity_mah: float
    voltage: float = 3.7
    peukert_exponent: float = 1.05
    rated_hours: float = 20.0

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise SpecificationError("battery capacity must be positive")
        if self.voltage <= 0:
            raise SpecificationError("battery voltage must be positive")
        if self.peukert_exponent < 1.0:
            raise SpecificationError(
                "Peukert exponent must be at least 1.0"
            )
        if self.rated_hours <= 0:
            raise SpecificationError("rated hours must be positive")

    @property
    def energy_joules(self) -> float:
        """Ideal stored energy: capacity × voltage."""
        return self.capacity_mah * 1e-3 * 3600.0 * self.voltage

    def lifetime_hours(self, average_power: float) -> float:
        """Ideal lifetime in hours at a constant power draw (watts)."""
        if average_power <= 0:
            raise SpecificationError(
                "average power must be positive to bound the lifetime"
            )
        return self.energy_joules / average_power / 3600.0

    def lifetime_hours_peukert(self, average_power: float) -> float:
        """Peukert-corrected lifetime in hours at constant power.

        ``t = H · (C / (I · H))^k`` with the current ``I = P / V``,
        rated duration ``H`` and capacity ``C`` in ampere-hours.
        """
        if average_power <= 0:
            raise SpecificationError(
                "average power must be positive to bound the lifetime"
            )
        current = average_power / self.voltage
        capacity_ah = self.capacity_mah * 1e-3
        return self.rated_hours * (
            capacity_ah / (current * self.rated_hours)
        ) ** self.peukert_exponent

    def lifetime_gain(
        self, baseline_power: float, improved_power: float
    ) -> float:
        """Relative lifetime extension (Peukert model), e.g. 0.45 = +45 %."""
        baseline = self.lifetime_hours_peukert(baseline_power)
        improved = self.lifetime_hours_peukert(improved_power)
        return improved / baseline - 1.0
