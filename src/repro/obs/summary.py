"""The ``run_summary.json`` document a campaign exports.

One JSON file per run directory, written atomically when the campaign
finishes (and, best-effort, when it is interrupted), answering "what
did this campaign do and where did the time go" without replaying the
event stream: job totals, per-job outcome rows, the evaluation-engine
perf counters aggregated across jobs — including the per-mode phase
breakdown, so Equation (1)'s probability-weighted fitness cost is
attributable to operational modes — and a dump of the process-global
metrics registry.

Schema (``version`` 1)::

    {
      "version": 1,
      "campaign": str,
      "generated_at": float,        # unix seconds
      "interrupted": bool,
      "jobs": {"total": int, "completed": int,
               "failed": int, "pending": int},
      "retries": int,
      "wall_seconds": float | null, # first..last event timestamp
      "job_results": {job_id: {"power": float, "cpu_time": float,
                               "feasible": bool, "generations": int,
                               "evaluations": int, "attempts": int}},
      "failures": {job_id: str},
      "perf": {"phase_seconds": {...}, "phase_calls": {...},
               "mode_phase_seconds": {phase: {mode: float}},
               "evaluations": int, "cache_hits": int,
               "dedup_hits": int, "wall_time": float,
               "pool_busy_seconds": float},
      "metrics": {"counters": {...}, "gauges": {...},
                  "histograms": {...}},
    }
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, List, Mapping, Optional, Union

PathLike = Union[str, pathlib.Path]

#: File name of the summary inside a campaign run directory.
RUN_SUMMARY_FILENAME = "run_summary.json"

#: Schema version; bump on incompatible change.
SUMMARY_VERSION = 1

#: Per-job result fields copied into the summary rows.
_JOB_FIELDS = (
    "power",
    "cpu_time",
    "feasible",
    "generations",
    "evaluations",
    "attempts",
)

#: Additive perf counters aggregated across jobs.
_PERF_SCALARS = (
    "evaluations",
    "cache_hits",
    "dedup_hits",
    "wall_time",
    "batches",
    "parallel_evaluations",
    "pool_busy_seconds",
    "pool_service_seconds",
    "pool_dispatch_seconds",
    "pool_steals",
    "pool_fallbacks",
    "inprocess_evaluations",
    "inprocess_eval_seconds",
    "speculation_issued",
    "speculation_hits",
    "speculation_discards",
    "mode_cache_hits",
    "mode_cache_misses",
)


def run_summary_path(run_dir: PathLike) -> pathlib.Path:
    return pathlib.Path(run_dir) / RUN_SUMMARY_FILENAME


def _aggregate_perf(
    perfs: List[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Sum the additive perf counters of every finished job."""
    totals: Dict[str, Any] = {name: 0 for name in _PERF_SCALARS}
    phase_seconds: Dict[str, float] = {}
    phase_calls: Dict[str, int] = {}
    mode_phase_seconds: Dict[str, Dict[str, float]] = {}
    for perf in perfs:
        for name in _PERF_SCALARS:
            totals[name] += perf.get(name, 0) or 0
        for phase, seconds in (perf.get("phase_seconds") or {}).items():
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
        for phase, calls in (perf.get("phase_calls") or {}).items():
            phase_calls[phase] = phase_calls.get(phase, 0) + calls
        for phase, modes in (
            perf.get("mode_phase_seconds") or {}
        ).items():
            bucket = mode_phase_seconds.setdefault(phase, {})
            for mode, seconds in modes.items():
                bucket[mode] = bucket.get(mode, 0.0) + seconds
    totals["phase_seconds"] = phase_seconds
    totals["phase_calls"] = phase_calls
    totals["mode_phase_seconds"] = mode_phase_seconds
    # Derived pool figures, present only when some job actually had a
    # pool (readers render n/a otherwise — see format_pool_stats).
    workers = max(
        (
            int(perf.get("pool_workers") or 0)
            for perf in perfs
        ),
        default=0,
    )
    if workers > 0:
        totals["pool_workers"] = workers
        window = totals["pool_dispatch_seconds"] or totals[
            "pool_service_seconds"
        ]
        capacity = window * workers
        if capacity > 0:
            totals["pool_utilisation"] = (
                totals["pool_busy_seconds"] / capacity
            )
    return totals


def build_run_summary(
    campaign: str,
    total_jobs: int,
    job_results: Mapping[str, Mapping[str, Any]],
    failures: Mapping[str, str],
    events: List[Mapping[str, Any]],
    metrics: Optional[Mapping[str, Any]] = None,
    interrupted: bool = False,
    clock: Any = time.time,
) -> Dict[str, Any]:
    """Assemble the summary document (see the module docstring schema).

    ``job_results`` maps job ids to their persisted result records (the
    :meth:`~repro.runtime.runner.JobResult.to_dict` shape); ``events``
    is the campaign's event list, used only for wall-clock bounds and
    the retry count.
    """
    timestamps = [
        float(event["ts"])
        for event in events
        if isinstance(event.get("ts"), (int, float))
    ]
    wall_seconds = (
        max(timestamps) - min(timestamps) if len(timestamps) > 1 else None
    )
    retries = sum(
        1 for event in events if event.get("event") == "job_retried"
    )
    completed = len(job_results)
    failed = len(failures)
    rows = {
        job_id: {name: record.get(name) for name in _JOB_FIELDS}
        for job_id, record in sorted(job_results.items())
    }
    perfs = [
        record.get("perf") or {} for record in job_results.values()
    ]
    return {
        "version": SUMMARY_VERSION,
        "campaign": campaign,
        "generated_at": round(float(clock()), 6),
        "interrupted": bool(interrupted),
        "jobs": {
            "total": total_jobs,
            "completed": completed,
            "failed": failed,
            "pending": max(0, total_jobs - completed - failed),
        },
        "retries": retries,
        "wall_seconds": wall_seconds,
        "job_results": rows,
        "failures": dict(sorted(failures.items())),
        "perf": _aggregate_perf(perfs),
        "metrics": dict(metrics) if metrics is not None else {},
    }


def write_run_summary(
    run_dir: PathLike, summary: Mapping[str, Any]
) -> pathlib.Path:
    """Atomically write ``run_summary.json`` into ``run_dir``."""
    path = run_summary_path(run_dir)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_run_summary(run_dir: PathLike) -> Dict[str, Any]:
    """Read a run directory's summary back (raises on absence)."""
    from repro.errors import CampaignError

    path = run_summary_path(run_dir)
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise CampaignError(f"no run summary at {path}") from None
    except json.JSONDecodeError as exc:
        raise CampaignError(
            f"corrupt run summary at {path}: {exc}"
        ) from exc
