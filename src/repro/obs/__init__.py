"""Campaign observability: metrics, live status and run summaries.

The package turns the campaign runtime from *durable* into *operable*:

* :mod:`repro.obs.metrics` — a lightweight process-global metrics
  registry (counters / gauges / histograms with labels) that mirrors
  the :class:`~repro.engine.profile.PhaseProfiler` merge-by-delta
  design, so pool workers ship metric deltas back with every result
  chunk and the main process always holds the complete picture.
* :mod:`repro.obs.status` — parse a run directory's ``events.jsonl``
  into a progress/ETA summary (``repro-mm campaign --status``) and
  follow the stream live (``--tail``).
* :mod:`repro.obs.summary` — the ``run_summary.json`` document every
  campaign exports when it finishes (or is interrupted).

Nothing in this package imports :mod:`repro.runtime` at module level,
so the runtime is free to build on it without import cycles.
"""

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.status import (
    CampaignStatus,
    campaign_status,
    format_event,
    format_pool_stats,
    format_status,
    tail_events,
)
from repro.obs.summary import (
    RUN_SUMMARY_FILENAME,
    build_run_summary,
    load_run_summary,
    run_summary_path,
    write_run_summary,
)

__all__ = [
    "CampaignStatus",
    "MetricsRegistry",
    "REGISTRY",
    "RUN_SUMMARY_FILENAME",
    "build_run_summary",
    "campaign_status",
    "format_event",
    "format_pool_stats",
    "format_status",
    "load_run_summary",
    "run_summary_path",
    "tail_events",
    "write_run_summary",
]
