"""Live campaign status and event tailing.

Everything here works from a run directory's ``events.jsonl`` alone —
no checkpoint, spec or result files are required — so a monitoring
shell can inspect a campaign that is still running (or crashed) on
another machine with nothing but the event stream synced over.

:func:`tail_events` is the shared reader: it yields complete events in
order, buffers torn trailing writes until the rest of the line arrives,
and can either stop at end-of-file or keep following the stream until a
terminal campaign event shows up.  :func:`campaign_status` folds one
pass of those events into a :class:`CampaignStatus` with progress,
retry/failure counts and an ETA extrapolated from the wall-clock times
of already finished jobs.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Event kinds that end a campaign process (tailing stops after them).
TERMINAL_EVENTS = ("campaign_finished", "campaign_interrupted")


# ----------------------------------------------------------------------
# Tailing
# ----------------------------------------------------------------------


def tail_events(
    path: PathLike,
    follow: bool = False,
    poll_interval: float = 0.25,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[Dict[str, Any]]:
    """Yield events from ``events.jsonl``, optionally following it live.

    With ``follow=False`` the iterator stops at the current end of
    file; a torn trailing line (crash mid-write) is silently dropped,
    matching :func:`repro.runtime.events.iter_events`.  With
    ``follow=True`` it keeps polling for new lines — a torn tail is
    *buffered* until the writer completes it — and stops once a
    terminal campaign event (``campaign_finished`` /
    ``campaign_interrupted``) has been yielded.
    """
    path = pathlib.Path(path)
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        from repro.errors import CampaignError

        raise CampaignError(f"no event stream at {path}") from None
    with handle:
        buffer = ""
        while True:
            line = handle.readline()
            if not line:
                if not follow:
                    return
                sleep(poll_interval)
                continue
            buffer += line
            if not buffer.endswith("\n"):
                # Torn write: wait for the writer to finish the line
                # (or drop it at EOF when not following).
                if not follow:
                    return
                continue
            stripped = buffer.strip()
            buffer = ""
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except json.JSONDecodeError:
                # A complete-but-corrupt line; skip it rather than kill
                # a monitoring loop.
                continue
            yield event
            if event.get("event") in TERMINAL_EVENTS and follow:
                return


# ----------------------------------------------------------------------
# Status aggregation
# ----------------------------------------------------------------------


@dataclass
class CampaignStatus:
    """One-pass aggregation of a campaign's event stream."""

    campaign: Optional[str] = None
    total_jobs: int = 0
    completed: int = 0
    skipped: int = 0
    failed: int = 0
    retries: int = 0
    running: List[str] = field(default_factory=list)
    failures: Dict[str, str] = field(default_factory=dict)
    started_ts: Optional[float] = None
    last_ts: Optional[float] = None
    finished: bool = False
    interrupted: bool = False
    #: Wall-clock seconds of each job finished *in this stream*.
    job_wall_seconds: Dict[str, float] = field(default_factory=dict)
    #: job_id -> last reported generation (still-running jobs).
    last_generation: Dict[str, int] = field(default_factory=dict)

    @property
    def done(self) -> int:
        """Jobs no longer pending (completed here, skipped or failed)."""
        return self.completed + self.skipped + self.failed

    @property
    def remaining(self) -> int:
        return max(0, self.total_jobs - self.done)

    @property
    def progress(self) -> float:
        if self.total_jobs <= 0:
            return 0.0
        return self.done / self.total_jobs

    @property
    def mean_job_seconds(self) -> Optional[float]:
        if not self.job_wall_seconds:
            return None
        values = self.job_wall_seconds.values()
        return sum(values) / len(values)

    @property
    def elapsed_seconds(self) -> Optional[float]:
        if self.started_ts is None or self.last_ts is None:
            return None
        return max(0.0, self.last_ts - self.started_ts)

    @property
    def eta_seconds(self) -> Optional[float]:
        """Remaining wall time, extrapolated from finished jobs.

        ``None`` until at least one job has finished in this stream (a
        resumed campaign that has only skipped jobs so far has no
        timing sample yet).  Running jobs count for the time they have
        left relative to the mean, never negative.
        """
        mean = self.mean_job_seconds
        if mean is None or self.finished:
            return None
        estimate = 0.0
        running = set(self.running)
        for job_id in running:
            # job_started ts is tracked in _job_started_ts.
            started = self._job_started_ts.get(job_id)
            elapsed = (
                max(0.0, (self.last_ts or started) - started)
                if started is not None
                else 0.0
            )
            estimate += max(0.0, mean - elapsed)
        estimate += mean * max(0, self.remaining - len(running))
        return estimate

    # Internal: per-job start timestamps (latest attempt).
    _job_started_ts: Dict[str, float] = field(default_factory=dict)


def campaign_status(run_dir: PathLike) -> CampaignStatus:
    """Aggregate ``<run_dir>/events.jsonl`` into a :class:`CampaignStatus`."""
    path = pathlib.Path(run_dir) / "events.jsonl"
    status = CampaignStatus()
    for event in tail_events(path, follow=False):
        kind = event.get("event")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            status.last_ts = float(ts)
            if status.started_ts is None:
                status.started_ts = float(ts)
        job_id = event.get("job_id")
        if kind == "campaign_started":
            status.campaign = event.get("campaign")
            status.total_jobs = int(event.get("total_jobs", 0))
            # A resume restarts the stream bookkeeping: every job done
            # in an earlier segment is re-reported as job_skipped, a
            # previously failed one is re-attempted, and a job that was
            # mid-flight when the previous process died is not running
            # any more.  Only the wall-time samples (for the ETA) and
            # the retry count survive across segments.
            status.finished = False
            status.interrupted = False
            status.completed = 0
            status.skipped = 0
            status.failed = 0
            status.failures.clear()
            status.running.clear()
            status.last_generation.clear()
        elif kind == "job_started" and job_id:
            if job_id not in status.running:
                status.running.append(job_id)
            if isinstance(ts, (int, float)):
                status._job_started_ts[job_id] = float(ts)
        elif kind == "generation" and job_id:
            status.last_generation[job_id] = int(
                event.get("generation", 0)
            )
        elif kind == "job_retried":
            status.retries += 1
        elif kind == "job_finished" and job_id:
            status.completed += 1
            if job_id in status.running:
                status.running.remove(job_id)
            status.last_generation.pop(job_id, None)
            started = status._job_started_ts.get(job_id)
            if started is not None and isinstance(ts, (int, float)):
                status.job_wall_seconds[job_id] = max(
                    0.0, float(ts) - started
                )
        elif kind == "job_skipped" and job_id:
            status.skipped += 1
        elif kind == "job_failed" and job_id:
            status.failed += 1
            if job_id in status.running:
                status.running.remove(job_id)
            status.last_generation.pop(job_id, None)
            status.failures[job_id] = str(event.get("error", ""))
        elif kind == "campaign_finished":
            status.finished = True
        elif kind == "campaign_interrupted":
            status.interrupted = True
    return status


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _clock(ts: Any) -> str:
    if not isinstance(ts, (int, float)):
        return "--:--:--"
    return time.strftime("%H:%M:%S", time.localtime(ts))


def _duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "unknown"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def format_event(event: Dict[str, Any]) -> str:
    """One human-readable line for any campaign event."""
    kind = event.get("event")
    prefix = f"{_clock(event.get('ts'))} "
    job = event.get("job_id", "?")
    if kind == "campaign_started":
        return (
            f"{prefix}campaign {event.get('campaign')!r} started: "
            f"{event.get('pending_jobs')}/{event.get('total_jobs')} "
            f"jobs pending"
        )
    if kind == "job_started":
        resumed = event.get("resumed_from") or 0
        attempt = event.get("attempt", 1)
        suffix = f" (attempt {attempt})" if attempt and attempt > 1 else ""
        if resumed:
            suffix += f" resuming from generation {resumed}"
        return f"{prefix}[{job}] started{suffix}"
    if kind == "generation":
        best = event.get("best_fitness")
        best_text = f"{best:.6g}" if isinstance(best, float) else "n/a"
        return (
            f"{prefix}[{job}] generation {event.get('generation')}: "
            f"best fitness {best_text}, "
            f"{event.get('evaluations')} evaluations"
        )
    if kind == "checkpointed":
        return (
            f"{prefix}[{job}] checkpointed at generation "
            f"{event.get('generation')}"
        )
    if kind == "job_retried":
        return (
            f"{prefix}[{job}] worker pool died "
            f"(attempt {event.get('attempt')}); retrying in "
            f"{event.get('backoff_seconds')}s"
        )
    if kind == "job_finished":
        power = event.get("power")
        power_text = (
            f"{power * 1e3:.3f} mW" if isinstance(power, float) else "n/a"
        )
        return (
            f"{prefix}[{job}] finished: {power_text}, "
            f"{event.get('generations')} generations, "
            f"{float(event.get('cpu_time', 0.0)):.1f}s"
        )
    if kind == "job_failed":
        return f"{prefix}[{job}] FAILED: {event.get('error')}"
    if kind == "job_skipped":
        return f"{prefix}[{job}] already complete, skipped"
    if kind == "campaign_interrupted":
        return (
            f"{prefix}campaign {event.get('campaign')!r} interrupted "
            f"({event.get('completed_jobs')} jobs completed)"
        )
    if kind == "campaign_finished":
        return (
            f"{prefix}campaign {event.get('campaign')!r} finished: "
            f"{event.get('completed_jobs')} completed, "
            f"{event.get('failed_jobs')} failed"
        )
    if kind == "adapt_drift":
        return (
            f"{prefix}drift detected at t={event.get('time'):.1f}s "
            f"({event.get('reason')}): regret "
            f"{float(event.get('regret', 0.0)):.1%}, distance "
            f"{float(event.get('distance', 0.0)):.3f}, deployed "
            f"{event.get('deployed')!r}"
        )
    if kind == "adapt_swap":
        return (
            f"{prefix}swapped design at t={event.get('time'):.1f}s: "
            f"{event.get('previous')!r} -> {event.get('design')!r} "
            f"({event.get('reason')}, switch time "
            f"{float(event.get('switch_time', 0.0)) * 1e3:.1f} ms)"
        )
    if kind == "adapt_resynthesis":
        return (
            f"{prefix}re-synthesis launched at "
            f"t={event.get('time'):.1f}s: library-span regret "
            f"{float(event.get('span_regret', 0.0)):.1%}, Ψ novelty "
            f"{float(event.get('novelty', 0.0)):.3f}"
        )
    if kind == "adapt_admitted":
        power = event.get("power")
        power_text = (
            f"{power * 1e3:.3f} mW" if isinstance(power, float) else "n/a"
        )
        return (
            f"{prefix}design {event.get('design')!r} admitted to the "
            f"library: {power_text} under the estimated Ψ, "
            f"{event.get('generations')} generations"
            + ("" if event.get("feasible") else " (INFEASIBLE)")
        )
    payload = {
        k: v for k, v in event.items() if k not in ("ts", "seq")
    }
    return f"{prefix}{json.dumps(payload, sort_keys=True)}"


def format_status(status: CampaignStatus) -> str:
    """Multi-line progress report for ``repro-mm campaign --status``."""
    lines: List[str] = []
    name = status.campaign if status.campaign is not None else "?"
    if status.finished:
        state = "finished"
    elif status.interrupted:
        state = "interrupted"
    else:
        state = "running"
    lines.append(f"campaign {name!r}: {state}")
    lines.append(
        f"  progress: {status.done}/{status.total_jobs} jobs "
        f"({status.progress:.0%}) — {status.completed} completed, "
        f"{status.skipped} skipped, {status.failed} failed"
    )
    lines.append(
        f"  retries: {status.retries}, elapsed: "
        f"{_duration(status.elapsed_seconds)}"
    )
    mean = status.mean_job_seconds
    if mean is not None:
        lines.append(f"  mean job wall time: {_duration(mean)}")
    if not status.finished:
        eta = status.eta_seconds
        # With zero completed jobs there is no timing sample at all —
        # say "n/a" explicitly rather than an extrapolated guess.
        if eta is None:
            lines.append("  eta: n/a (no completed jobs yet)")
        else:
            lines.append(f"  eta: {_duration(eta)}")
    for job_id in status.running:
        generation = status.last_generation.get(job_id)
        progress = (
            f" (generation {generation})" if generation is not None else ""
        )
        lines.append(f"  running: {job_id}{progress}")
    for job_id, error in status.failures.items():
        lines.append(f"  failed: {job_id}: {error}")
    return "\n".join(lines)


def format_pool_stats(summary: Dict[str, Any]) -> str:
    """Evaluation-pool lines of ``--status`` from a run summary.

    Every field renders ``n/a`` when absent or non-numeric: a run that
    fell back to serial evaluation mid-campaign, or a summary written
    by an older release, must degrade to ``n/a`` rather than crash the
    status command.
    """
    perf = summary.get("perf") or {}

    def number(key: str) -> Optional[float]:
        value = perf.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)

    def count(key: str) -> str:
        value = number(key)
        return f"{value:.0f}" if value is not None else "n/a"

    def seconds(key: str) -> str:
        value = number(key)
        return f"{value:.1f}s" if value is not None else "n/a"

    utilisation = number("pool_utilisation")
    utilisation_text = (
        f"{utilisation:.0%}" if utilisation is not None else "n/a"
    )
    lines = [
        (
            f"  pool: workers {count('pool_workers')}, "
            f"utilisation {utilisation_text}, "
            f"busy {seconds('pool_busy_seconds')}"
        ),
        (
            f"  pool work: {count('parallel_evaluations')} parallel "
            f"evaluations in {count('batches')} batches, "
            f"{count('pool_steals')} steals, "
            f"{count('pool_fallbacks')} fallbacks"
        ),
        (
            f"  speculation: {count('speculation_issued')} issued, "
            f"{count('speculation_hits')} hits, "
            f"{count('speculation_discards')} discarded"
        ),
        (
            f"  in-process: {count('inprocess_evaluations')} evaluations, "
            f"{seconds('inprocess_eval_seconds')}"
        ),
    ]
    return "\n".join(lines)
