"""A lightweight process-global metrics registry.

Counters, gauges and histograms, each addressed by a name plus an
optional set of string labels — the conventional shape most metric
backends (Prometheus, statsd tag dialects) expect, kept dependency-free
here.  One process-global :data:`REGISTRY` instance plays the same role
:data:`repro.engine.profile.PROFILER` plays for phase timers: code on
the hot path records into its own process's registry, pool workers ship
:meth:`MetricsRegistry.delta_since` deltas back with every result
chunk, and the receiving side folds them in with
:meth:`MetricsRegistry.merge`.  The registry is therefore always a
complete account of the work done on behalf of this process, regardless
of where it actually ran.

Merge semantics per instrument:

* **counters** — monotonically increasing; deltas subtract, merges add.
* **gauges** — last-write-wins point-in-time values; a delta carries the
  current value whenever it differs from the base, a merge overwrites.
* **histograms** — count/sum/bucket counts subtract and add like
  counters; ``min``/``max`` travel as current values and merge via
  ``min()``/``max()``.

The registry is deliberately lock-free: every process in this codebase
records from a single thread, and cross-process aggregation happens
through explicit snapshot/delta/merge calls.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Tuple

#: Identity of one metric series: name + sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram bucket upper bounds (seconds-oriented).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.5,
    2.5,
    10.0,
    60.0,
)


def metric_key(name: str, labels: Mapping[str, Any]) -> MetricKey:
    """Canonical (hashable, order-independent) series identity."""
    return (
        name,
        tuple(sorted((str(k), str(v)) for k, v in labels.items())),
    )


def format_key(key: MetricKey) -> str:
    """``name{a=1,b=x}`` rendering used for JSON exports."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class HistogramData:
    """Aggregated observations of one histogram series."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: One count per bucket bound, plus a final overflow bucket.
    buckets: List[int] = field(default_factory=list)

    def observe(self, value: float, bounds: Tuple[float, ...]) -> None:
        if not self.buckets:
            self.buckets = [0] * (len(bounds) + 1)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        for index, bound in enumerate(bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": list(self.buckets),
        }


#: A snapshot (or delta) of a registry's complete state.
MetricsSnapshot = Dict[str, Dict[MetricKey, Any]]


class MetricsRegistry:
    """Counters / gauges / histograms with snapshot-delta-merge."""

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, HistogramData] = {}
        self._paused = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Suppress all recording inside the block (nestable).

        For *replayed* work: the speculation predictor re-runs the
        breeding stages to forecast the next generation, and those
        stages meter themselves — without suppression every speculated
        generation would double-count ``ga_*`` counters.  Reads,
        snapshots and merges stay live; only ``inc`` / ``set_gauge`` /
        ``observe`` become no-ops.
        """
        self._paused += 1
        try:
            yield
        finally:
            self._paused -= 1

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> float:
        """Increment a counter; returns its new value."""
        key = metric_key(name, labels)
        if self._paused:
            return self._counters.get(key, 0.0)
        value = self._counters.get(key, 0.0) + amount
        self._counters[key] = value
        return value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if self._paused:
            return
        self._gauges[metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation."""
        if self._paused:
            return
        key = metric_key(name, labels)
        data = self._histograms.get(key)
        if data is None:
            data = self._histograms[key] = HistogramData()
        data.observe(float(value), self.buckets)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get(metric_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: Any) -> float:
        return self._gauges.get(metric_key(name, labels), 0.0)

    def histogram_data(self, name: str, **labels: Any) -> HistogramData:
        return self._histograms.get(
            metric_key(name, labels), HistogramData()
        )

    # ------------------------------------------------------------------
    # Snapshot / delta / merge (the PhaseProfiler pattern)
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Current state, safe to keep across further accumulation."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                key: HistogramData(
                    count=data.count,
                    total=data.total,
                    minimum=data.minimum,
                    maximum=data.maximum,
                    buckets=list(data.buckets),
                )
                for key, data in self._histograms.items()
            },
        }

    def delta_since(self, base: MetricsSnapshot) -> MetricsSnapshot:
        """Accumulation that happened after ``base`` was snapshotted."""
        base_counters = base.get("counters", {})
        base_gauges = base.get("gauges", {})
        base_histograms = base.get("histograms", {})
        counters = {}
        for key, value in self._counters.items():
            extra = value - base_counters.get(key, 0.0)
            if extra != 0.0:
                counters[key] = extra
        gauges = {
            key: value
            for key, value in self._gauges.items()
            if base_gauges.get(key) != value
        }
        histograms = {}
        for key, data in self._histograms.items():
            prior = base_histograms.get(key)
            if prior is None:
                prior = HistogramData()
            extra_count = data.count - prior.count
            if extra_count <= 0:
                continue
            prior_buckets = prior.buckets or [0] * len(data.buckets)
            histograms[key] = HistogramData(
                count=extra_count,
                total=data.total - prior.total,
                minimum=data.minimum,
                maximum=data.maximum,
                buckets=[
                    current - before
                    for current, before in zip(
                        data.buckets, prior_buckets
                    )
                ],
            )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, delta: MetricsSnapshot) -> None:
        """Fold another registry's snapshot (or a delta) into this one."""
        for key, value in delta.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        for key, value in delta.get("gauges", {}).items():
            self._gauges[key] = value
        for key, data in delta.get("histograms", {}).items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = HistogramData()
            if not mine.buckets:
                mine.buckets = [0] * len(data.buckets)
            mine.count += data.count
            mine.total += data.total
            mine.minimum = min(mine.minimum, data.minimum)
            mine.maximum = max(mine.maximum, data.maximum)
            for index, count in enumerate(data.buckets):
                mine.buckets[index] += count

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dump (used by ``run_summary.json``)."""
        return {
            "counters": {
                format_key(key): value
                for key, value in sorted(self._counters.items())
            },
            "gauges": {
                format_key(key): value
                for key, value in sorted(self._gauges.items())
            },
            "histograms": {
                format_key(key): data.to_dict()
                for key, data in sorted(self._histograms.items())
            },
        }


#: The process-global registry all instrumentation records into.
REGISTRY = MetricsRegistry()
