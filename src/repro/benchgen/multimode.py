"""Generation of complete multi-mode co-synthesis instances.

:func:`generate_problem` turns a :class:`MultiModeSpec` — the structural
parameters the paper states for its automatically generated examples —
into a fully specified :class:`~repro.problem.Problem`: operational
modes with skewed execution probabilities, a heterogeneous architecture
(at least one GPP, a mix of ASIPs/ASICs/FPGAs, bus links), and a
technology library in which hardware implementations are 5–100× faster
and orders of magnitude more energy-efficient than software, at an area
price that prevents mapping everything into hardware.

Everything is derived deterministically from the spec's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.architecture.communication_link import CommunicationLink
from repro.architecture.platform import Architecture
from repro.architecture.processing_element import PEKind, ProcessingElement
from repro.architecture.technology import TaskImplementation, TechnologyLibrary
from repro.benchgen.random_graphs import random_task_graph
from repro.problem import Problem
from repro.scheduling.mobility import critical_path_length
from repro.specification.mode import Mode
from repro.specification.omsm import OMSM, ModeTransition
from repro.specification.task_graph import TaskGraph

#: Discrete supply voltages of DVS-enabled components (volts).
DVS_LEVELS: Tuple[float, ...] = (1.2, 1.8, 2.4, 3.3)

#: Device threshold voltage used by the delay model (volts).
THRESHOLD_VOLTAGE = 0.4


@dataclass(frozen=True)
class MultiModeSpec:
    """Structural parameters of one generated instance.

    Mirrors the ranges stated in the paper's experimental section:
    3–5 modes of 8–32 tasks, 2–4 heterogeneous PEs, 1–3 links.
    """

    name: str
    seed: int
    mode_tasks: Tuple[int, ...]
    pe_count: int = 3
    cl_count: int = 1
    dvs_sw: bool = True
    dvs_hw_probability: float = 0.5
    period_slack: Tuple[float, float] = (1.4, 2.4)
    dominant_probability: Tuple[float, float] = (0.55, 0.85)
    dominant_assignment: str = "random"  # 'smallest'|'largest'|'random'
    dominant_period_stretch: Tuple[float, float] = (1.0, 1.0)
    shared_type_fraction: float = 0.25
    type_pool_fraction: float = 0.5
    hw_support_probability: float = 0.75
    hw_area_fraction: Tuple[float, float] = (0.22, 0.45)

    @property
    def mode_count(self) -> int:
        return len(self.mode_tasks)

    def __post_init__(self) -> None:
        if not self.mode_tasks:
            raise ValueError("need at least one mode")
        if any(count < 1 for count in self.mode_tasks):
            raise ValueError("every mode needs at least one task")
        if self.pe_count < 1:
            raise ValueError("need at least one PE")
        if self.cl_count < 1:
            raise ValueError("need at least one link")


def generate_problem(spec: MultiModeSpec) -> Problem:
    """Build the complete, validated problem instance for a spec."""
    rng = random.Random(spec.seed)
    graphs, type_pool = _make_task_graphs(spec, rng)
    architecture = _make_architecture(spec, rng)
    technology = _make_technology(spec, rng, type_pool, architecture)
    modes = _make_modes(spec, rng, graphs, technology, architecture)
    transitions = _make_transitions(spec, rng, modes)
    omsm = OMSM(spec.name, modes, transitions)
    return Problem(omsm, architecture, technology)


# ----------------------------------------------------------------------
# Specification
# ----------------------------------------------------------------------


def _make_task_graphs(
    spec: MultiModeSpec, rng: random.Random
) -> Tuple[List[TaskGraph], List[str]]:
    """Per-mode graphs with controlled cross-mode type intersection.

    Each mode owns a private type sub-pool; a task draws a *shared*
    type (enabling cross-mode resource sharing) with probability
    ``shared_type_fraction`` and a private one otherwise.  Private
    types make the modes compete for hardware area — the situation in
    which mode execution probabilities matter most.
    """
    shared_size = max(
        2, int(max(spec.mode_tasks) * spec.type_pool_fraction * 0.75)
    )
    shared_pool = [f"S{i:02d}" for i in range(shared_size)]
    all_types = list(shared_pool)
    graphs: List[TaskGraph] = []
    for index, task_count in enumerate(spec.mode_tasks):
        private_size = max(
            2, int(task_count * spec.type_pool_fraction)
        )
        private_pool = [f"M{index}T{i:02d}" for i in range(private_size)]
        all_types.extend(private_pool)
        task_types = [
            rng.choice(shared_pool)
            if rng.random() < spec.shared_type_fraction
            else rng.choice(private_pool)
            for _ in range(task_count)
        ]
        graphs.append(
            random_task_graph(
                name=f"{spec.name}_mode{index}",
                rng=rng,
                task_count=task_count,
                type_pool=(),
                max_width=min(4, max(2, task_count // 3)),
                task_prefix=f"m{index}_t",
                task_types=task_types,
            )
        )
    used = {
        task.task_type for graph in graphs for task in graph
    }
    return graphs, [t for t in all_types if t in used]


def _skewed_probabilities(
    spec: MultiModeSpec,
    rng: random.Random,
    graphs: Sequence[TaskGraph],
) -> List[float]:
    """One dominant mode, the rest sharing the remainder randomly.

    Captures the paper's key observation that devices spend uneven
    amounts of time in their modes (e.g. 74 % in RLC for the phone).
    Like the phone — where the dominant radio-link-control mode is a
    small monitoring loop while the rare MP3/photo modes are heavy —
    the dominant probability is attached to the *smallest* mode.
    """
    count = len(graphs)
    if count == 1:
        return [1.0]
    dominant = rng.uniform(*spec.dominant_probability)
    weights = [rng.uniform(0.2, 1.0) for _ in range(count - 1)]
    scale = (1.0 - dominant) / sum(weights)
    rest = [w * scale for w in weights]
    rng.shuffle(rest)
    if spec.dominant_assignment == "smallest":
        chosen = min(range(count), key=lambda i: len(graphs[i]))
    elif spec.dominant_assignment == "largest":
        chosen = max(range(count), key=lambda i: len(graphs[i]))
    else:
        chosen = rng.randrange(count)
    probabilities = []
    for index in range(count):
        if index == chosen:
            probabilities.append(dominant)
        else:
            probabilities.append(rest.pop())
    return probabilities


def _make_modes(
    spec: MultiModeSpec,
    rng: random.Random,
    graphs: Sequence[TaskGraph],
    technology: TechnologyLibrary,
    architecture: Architecture,
) -> List[Mode]:
    probabilities = _skewed_probabilities(spec, rng, graphs)
    software = [pe.name for pe in architecture.software_pes()]
    dominant_index = max(
        range(len(graphs)), key=lambda i: probabilities[i]
    )
    modes = []
    for index, graph in enumerate(graphs):
        # Reference: the critical path when every task uses its fastest
        # software implementation.  The period leaves a configurable
        # slack above it so feasible mappings exist but are not free.
        def sw_time(task_name: str) -> float:
            task = graph.task(task_name)
            return min(
                technology.implementation(task.task_type, pe).exec_time
                for pe in software
            )

        reference_mode = Mode(
            name=f"tmp{index}", task_graph=graph, probability=1.0, period=1e9
        )
        critical = critical_path_length(reference_mode, sw_time)
        period = critical * rng.uniform(*spec.period_slack)
        if index == dominant_index:
            # Optionally slow down the dominant mode's iteration rate
            # (standby-like behaviour); 1.0 keeps its duty cycle high.
            period *= rng.uniform(*spec.dominant_period_stretch)
        modes.append(
            Mode(
                name=f"mode{index}",
                task_graph=graph,
                probability=probabilities[index],
                period=period,
            )
        )
    return modes


def _make_transitions(
    spec: MultiModeSpec, rng: random.Random, modes: Sequence[Mode]
) -> List[ModeTransition]:
    """A ring over all modes plus a few random chords."""
    names = [mode.name for mode in modes]
    transitions: Dict[Tuple[str, str], ModeTransition] = {}

    def add(src: str, dst: str) -> None:
        if src != dst and (src, dst) not in transitions:
            transitions[(src, dst)] = ModeTransition(
                src=src,
                dst=dst,
                max_time=rng.uniform(5e-3, 50e-3),
            )

    for src, dst in zip(names, names[1:] + names[:1]):
        add(src, dst)
        add(dst, src)
    for _ in range(len(names)):
        add(rng.choice(names), rng.choice(names))
    return list(transitions.values())


# ----------------------------------------------------------------------
# Architecture and technology
# ----------------------------------------------------------------------


def _make_architecture(
    spec: MultiModeSpec, rng: random.Random
) -> Architecture:
    pes: List[ProcessingElement] = []
    # The first PE is always a general-purpose processor so every task
    # type has a guaranteed software implementation.
    pes.append(
        ProcessingElement(
            name="GPP0",
            kind=PEKind.GPP,
            static_power=rng.uniform(2e-3, 8e-3),
            voltage_levels=DVS_LEVELS if spec.dvs_sw else None,
            threshold_voltage=THRESHOLD_VOLTAGE,
        )
    )
    for index in range(1, spec.pe_count):
        roll = rng.random()
        dvs = rng.random() < spec.dvs_hw_probability
        if index == 1:
            # Guarantee at least one hardware component: a multi-mode
            # co-design instance without ASICs/FPGAs has no core
            # allocation or sharing decisions to make.
            roll = rng.uniform(0.4, 1.0)
        if roll < 0.4:
            pes.append(
                ProcessingElement(
                    name=f"ASIP{index}",
                    kind=PEKind.ASIP,
                    static_power=rng.uniform(2e-3, 8e-3),
                    voltage_levels=DVS_LEVELS if spec.dvs_sw else None,
                    threshold_voltage=THRESHOLD_VOLTAGE,
                )
            )
        elif roll < 0.8:
            pes.append(
                ProcessingElement(
                    name=f"ASIC{index}",
                    kind=PEKind.ASIC,
                    area=1.0,  # sized later by technology generation
                    static_power=rng.uniform(2e-3, 7e-3),
                    voltage_levels=DVS_LEVELS if dvs else None,
                    threshold_voltage=THRESHOLD_VOLTAGE,
                )
            )
        else:
            pes.append(
                ProcessingElement(
                    name=f"FPGA{index}",
                    kind=PEKind.FPGA,
                    area=1.0,  # sized later by technology generation
                    static_power=rng.uniform(3e-3, 9e-3),
                    voltage_levels=DVS_LEVELS if dvs else None,
                    threshold_voltage=THRESHOLD_VOLTAGE,
                    reconfig_time_per_cell=rng.uniform(4e-6, 1.2e-5),
                )
            )
    links = [
        CommunicationLink(
            name=f"CL{index}",
            connects=[pe.name for pe in pes],
            bandwidth_bps=rng.uniform(2e6, 2e7),
            comm_power=rng.uniform(1e-3, 5e-3),
            static_power=rng.uniform(5e-4, 2e-3),
        )
        for index in range(spec.cl_count)
    ]
    return Architecture(f"{spec.name}_arch", pes, links)


def _make_technology(
    spec: MultiModeSpec,
    rng: random.Random,
    type_pool: Sequence[str],
    architecture: Architecture,
) -> TechnologyLibrary:
    entries: List[TaskImplementation] = []
    software = architecture.software_pes()
    hardware = architecture.hardware_pes()

    base_time: Dict[str, float] = {}
    base_power: Dict[str, float] = {}
    for task_type in type_pool:
        base_time[task_type] = rng.uniform(4e-3, 30e-3)
        base_power[task_type] = rng.uniform(0.05, 0.25)

    for task_type in type_pool:
        for pe in software:
            speed = 1.0 if pe.kind is PEKind.GPP else rng.uniform(0.6, 1.6)
            entries.append(
                TaskImplementation(
                    task_type=task_type,
                    pe=pe.name,
                    exec_time=base_time[task_type] * speed,
                    power=base_power[task_type] * rng.uniform(0.8, 1.2),
                )
            )

    hw_area_demand: Dict[str, float] = {pe.name: 0.0 for pe in hardware}
    for task_type in type_pool:
        for pe in hardware:
            if rng.random() >= spec.hw_support_probability:
                continue
            # Hardware runs 5-100x faster at a tiny fraction of the
            # software energy (the paper's stated assumption).
            speedup = rng.uniform(5.0, 100.0)
            exec_time = base_time[task_type] / speedup
            sw_energy = base_time[task_type] * base_power[task_type]
            hw_energy = sw_energy * rng.uniform(1e-3, 1e-2)
            area = rng.uniform(150.0, 400.0)
            entries.append(
                TaskImplementation(
                    task_type=task_type,
                    pe=pe.name,
                    exec_time=exec_time,
                    power=hw_energy / exec_time,
                    area=area,
                )
            )
            hw_area_demand[pe.name] += area

    # Size each hardware component to hold only part of what could be
    # mapped onto it: area pressure forces real trade-offs.
    for pe in hardware:
        demand = hw_area_demand[pe.name]
        pe.area = max(400.0, demand * rng.uniform(*spec.hw_area_fraction))

    return TechnologyLibrary(entries)
