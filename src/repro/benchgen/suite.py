"""The mul1–mul12 benchmark suite.

Twelve generated instances matching the paper's stated structural
parameters (Table 1, column 1 gives the mode counts): 3–5 operational
modes of 8–32 tasks each, mapped onto 2–4 heterogeneous PEs connected
by 1–3 communication links.  The exact instances the paper generated
are unpublished; these specs re-create the stated structure with fixed
seeds so every run of this library sees identical problems.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.benchgen.multimode import MultiModeSpec, generate_problem
from repro.problem import Problem

#: The twelve suite specs.  Mode counts follow Table 1 of the paper.
SUITE_SPECS: Tuple[MultiModeSpec, ...] = (
    MultiModeSpec(name="mul1", seed=101, mode_tasks=(12, 16, 10, 14),
                  pe_count=3, cl_count=1),
    MultiModeSpec(name="mul2", seed=102, mode_tasks=(8, 12, 9, 11),
                  pe_count=2, cl_count=1),
    MultiModeSpec(name="mul3", seed=103, mode_tasks=(20, 24, 16, 18, 22),
                  pe_count=4, cl_count=2),
    MultiModeSpec(name="mul4", seed=104, mode_tasks=(14, 18, 12, 16, 10),
                  pe_count=3, cl_count=2),
    MultiModeSpec(name="mul5", seed=105, mode_tasks=(10, 14, 12),
                  pe_count=3, cl_count=1),
    MultiModeSpec(name="mul6", seed=106, mode_tasks=(9, 13, 11, 8),
                  pe_count=2, cl_count=1),
    MultiModeSpec(name="mul7", seed=107, mode_tasks=(16, 12, 20, 14),
                  pe_count=4, cl_count=3),
    MultiModeSpec(name="mul8", seed=108, mode_tasks=(28, 32, 24, 30),
                  pe_count=4, cl_count=2),
    MultiModeSpec(name="mul9", seed=109, mode_tasks=(8, 10, 9, 8),
                  pe_count=2, cl_count=1),
    MultiModeSpec(name="mul10", seed=110, mode_tasks=(22, 18, 26, 20, 24),
                  pe_count=4, cl_count=2),
    MultiModeSpec(name="mul11", seed=111, mode_tasks=(9, 12, 10),
                  pe_count=3, cl_count=1),
    MultiModeSpec(name="mul12", seed=112, mode_tasks=(18, 22, 16, 20),
                  pe_count=3, cl_count=2),
)

_SPEC_BY_NAME: Dict[str, MultiModeSpec] = {
    spec.name: spec for spec in SUITE_SPECS
}


def suite_problem(name: str) -> Problem:
    """Generate one suite instance by name (``mul1`` .. ``mul12``)."""
    try:
        spec = _SPEC_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown suite instance {name!r}; choose from "
            f"{sorted(_SPEC_BY_NAME)}"
        ) from None
    return generate_problem(spec)


def load_suite() -> List[Problem]:
    """Generate all twelve suite instances, in order."""
    return [generate_problem(spec) for spec in SUITE_SPECS]
