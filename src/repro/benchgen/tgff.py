"""Reading and writing task graphs in TGFF-style format.

TGFF ("Task Graphs For Free", Dick/Rhodes/Wolf) is the de-facto
interchange format of the co-synthesis literature — the paper's
generated examples follow its conventions.  This module implements the
task-graph subset of the format:

* ``@TASK_GRAPH <n> { ... }`` blocks with ``PERIOD``, ``TASK`` and
  ``ARC`` statements::

      @TASK_GRAPH 0 {
        PERIOD 0.025
        TASK t0_0  TYPE 2
        TASK t0_1  TYPE 7
        ARC a0_0   FROM t0_0 TO t0_1 TYPE 1
      }

  ``TASK ... TYPE k`` declares a task of type ``k``; ``ARC ... TYPE k``
  declares a dependency whose type indexes a message size.
* an optional ``@MSG_SIZES`` table mapping arc types to bit counts, and
* comments starting with ``#``.

Reading produces plain :class:`~repro.specification.task_graph.TaskGraph`
objects (task types are rendered as ``"T<k>"``); writing emits the same
dialect, so external TGFF tooling and this library can exchange graphs.
Mode probabilities, architectures and technology tables are outside the
TGFF core format and stay in this library's JSON schema (`repro.io`).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union
import pathlib

from repro.errors import SpecificationError
from repro.specification.task_graph import CommEdge, Task, TaskGraph

_GRAPH_RE = re.compile(r"@TASK_GRAPH\s+(\d+)\s*\{")
_MSG_RE = re.compile(r"@MSG_SIZES\s*\{")
_TASK_RE = re.compile(
    r"^\s*TASK\s+(\S+)\s+TYPE\s+(\d+)\s*$", re.IGNORECASE
)
_ARC_RE = re.compile(
    r"^\s*ARC\s+(\S+)\s+FROM\s+(\S+)\s+TO\s+(\S+)\s+TYPE\s+(\d+)\s*$",
    re.IGNORECASE,
)
_PERIOD_RE = re.compile(
    r"^\s*PERIOD\s+([0-9.eE+-]+)\s*$", re.IGNORECASE
)
_MSG_ENTRY_RE = re.compile(r"^\s*(\d+)\s+([0-9.eE+-]+)\s*$")


def _strip_comment(line: str) -> str:
    position = line.find("#")
    return line if position < 0 else line[:position]


def parse_tgff(
    text: str, default_message_bits: float = 1024.0
) -> List[Tuple[TaskGraph, Optional[float]]]:
    """Parse TGFF text into ``(task graph, period)`` pairs.

    Periods are ``None`` when the block declares none.  Raises
    :class:`SpecificationError` on malformed blocks (unknown endpoints,
    unbalanced braces, duplicate graphs).
    """
    lines = text.splitlines()
    message_sizes: Dict[int, float] = {}
    graphs: List[Tuple[TaskGraph, Optional[float]]] = []
    index = 0
    seen_ids = set()
    while index < len(lines):
        line = _strip_comment(lines[index])
        graph_match = _GRAPH_RE.search(line)
        msg_match = _MSG_RE.search(line)
        if msg_match:
            index += 1
            while index < len(lines):
                entry = _strip_comment(lines[index]).strip()
                if entry.startswith("}"):
                    break
                matched = _MSG_ENTRY_RE.match(entry)
                if matched:
                    message_sizes[int(matched.group(1))] = float(
                        matched.group(2)
                    )
                elif entry:
                    raise SpecificationError(
                        f"malformed @MSG_SIZES entry: {entry!r}"
                    )
                index += 1
            else:
                raise SpecificationError(
                    "unterminated @MSG_SIZES block"
                )
        elif graph_match:
            graph_id = int(graph_match.group(1))
            if graph_id in seen_ids:
                raise SpecificationError(
                    f"duplicate @TASK_GRAPH id {graph_id}"
                )
            seen_ids.add(graph_id)
            tasks: List[Task] = []
            arcs: List[Tuple[str, str, int]] = []
            period: Optional[float] = None
            index += 1
            while index < len(lines):
                entry = _strip_comment(lines[index]).strip()
                if entry.startswith("}"):
                    break
                if not entry:
                    index += 1
                    continue
                task_match = _TASK_RE.match(entry)
                arc_match = _ARC_RE.match(entry)
                period_match = _PERIOD_RE.match(entry)
                if task_match:
                    tasks.append(
                        Task(
                            name=task_match.group(1),
                            task_type=f"T{int(task_match.group(2))}",
                        )
                    )
                elif arc_match:
                    arcs.append(
                        (
                            arc_match.group(2),
                            arc_match.group(3),
                            int(arc_match.group(4)),
                        )
                    )
                elif period_match:
                    period = float(period_match.group(1))
                else:
                    raise SpecificationError(
                        f"unrecognised TGFF statement: {entry!r}"
                    )
                index += 1
            else:
                raise SpecificationError(
                    f"unterminated @TASK_GRAPH {graph_id} block"
                )
            edges = [
                CommEdge(
                    src=src,
                    dst=dst,
                    data_bits=message_sizes.get(
                        arc_type, default_message_bits
                    ),
                )
                for src, dst, arc_type in arcs
            ]
            graphs.append(
                (
                    TaskGraph(f"tgff_{graph_id}", tasks, edges),
                    period,
                )
            )
        index += 1
    return graphs


def load_tgff(
    path: Union[str, pathlib.Path],
    default_message_bits: float = 1024.0,
) -> List[Tuple[TaskGraph, Optional[float]]]:
    """Parse a ``.tgff`` file from disk."""
    return parse_tgff(
        pathlib.Path(path).read_text(), default_message_bits
    )


def dump_tgff(
    graphs: Sequence[Tuple[TaskGraph, Optional[float]]],
) -> str:
    """Render task graphs in the TGFF dialect parsed by this module.

    Arc message sizes are emitted exactly through a generated
    ``@MSG_SIZES`` table (one arc type per distinct payload size), so
    ``parse_tgff(dump_tgff(gs))`` round-trips graphs losslessly up to
    the task-type naming convention (types must look like ``T<k>``).
    """
    sizes: List[float] = []
    size_index: Dict[float, int] = {}
    for graph, _ in graphs:
        for edge in graph.edges:
            if edge.data_bits not in size_index:
                size_index[edge.data_bits] = len(sizes)
                sizes.append(edge.data_bits)

    lines: List[str] = ["# generated by repro.benchgen.tgff", ""]
    if sizes:
        lines.append("@MSG_SIZES {")
        for arc_type, bits in enumerate(sizes):
            lines.append(f"  {arc_type} {bits:g}")
        lines.append("}")
        lines.append("")

    for number, (graph, period) in enumerate(graphs):
        lines.append(f"@TASK_GRAPH {number} {{")
        if period is not None:
            lines.append(f"  PERIOD {period:g}")
        for task in graph:
            if not re.fullmatch(r"T\d+", task.task_type):
                raise SpecificationError(
                    f"TGFF export requires numeric task types "
                    f"('T<k>'), got {task.task_type!r}"
                )
            lines.append(
                f"  TASK {task.name}  TYPE {task.task_type[1:]}"
            )
        for arc_number, edge in enumerate(graph.edges):
            lines.append(
                f"  ARC a{number}_{arc_number}  FROM {edge.src} "
                f"TO {edge.dst} TYPE {size_index[edge.data_bits]}"
            )
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


def save_tgff(
    graphs: Sequence[Tuple[TaskGraph, Optional[float]]],
    path: Union[str, pathlib.Path],
) -> None:
    """Write task graphs to a ``.tgff`` file."""
    pathlib.Path(path).write_text(dump_tgff(graphs))
