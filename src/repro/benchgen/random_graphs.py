"""Random task-graph generation (TGFF-style layered DAGs).

The generator emulates the structure of TGFF-produced graphs, which the
co-synthesis literature (including this paper's "automatically generated
examples") uses throughout: tasks are arranged in layers, every
non-entry task consumes data from at least one task of an earlier layer
and additional edges are sprinkled with a configurable probability.
Task types are drawn from a shared pool so that the same type recurs
within and across modes — the resource-sharing opportunity multi-mode
synthesis exploits.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.specification.task_graph import CommEdge, Task, TaskGraph


def random_task_graph(
    name: str,
    rng: random.Random,
    task_count: int,
    type_pool: Sequence[str],
    max_width: int = 4,
    extra_edge_probability: float = 0.25,
    data_bits_range: Tuple[float, float] = (256.0, 8192.0),
    task_prefix: str = "t",
    task_types: Optional[Sequence[str]] = None,
) -> TaskGraph:
    """Generate one layered random DAG.

    Parameters
    ----------
    name:
        Graph name.
    rng:
        Seeded random source; the graph is a pure function of it.
    task_count:
        Number of tasks (≥ 1).
    type_pool:
        Task types to draw from (with replacement) — sharing the pool
        across modes produces the cross-mode type intersections of
        multi-mode systems.
    max_width:
        Maximal number of tasks per layer.
    extra_edge_probability:
        Probability of adding a second (transitive-ish) edge per task.
    data_bits_range:
        Uniform range of the payload size on each edge.
    task_prefix:
        Prefix of generated task names (kept unique per graph).
    task_types:
        Optional explicit type per task (length ``task_count``);
        overrides the pool draw.  Used by the multi-mode generator to
        control how much the type sets of different modes intersect.
    """
    if task_count < 1:
        raise ValueError("task_count must be at least 1")
    if not type_pool and task_types is None:
        raise ValueError("type pool must not be empty")
    if task_types is not None and len(task_types) != task_count:
        raise ValueError(
            f"task_types has {len(task_types)} entries for "
            f"{task_count} tasks"
        )

    # Partition tasks into layers of random width.
    layers: List[List[str]] = []
    created = 0
    while created < task_count:
        width = min(rng.randint(1, max_width), task_count - created)
        layer = [
            f"{task_prefix}{created + offset}" for offset in range(width)
        ]
        created += width
        layers.append(layer)

    flat_names = [task_name for layer in layers for task_name in layer]
    if task_types is None:
        chosen_types = [rng.choice(list(type_pool)) for _ in flat_names]
    else:
        chosen_types = list(task_types)
    tasks = [
        Task(name=task_name, task_type=task_type)
        for task_name, task_type in zip(flat_names, chosen_types)
    ]

    edges: List[CommEdge] = []
    seen = set()

    def add_edge(src: str, dst: str) -> None:
        if (src, dst) in seen:
            return
        seen.add((src, dst))
        bits = rng.uniform(*data_bits_range)
        edges.append(CommEdge(src=src, dst=dst, data_bits=bits))

    for level in range(1, len(layers)):
        for task_name in layers[level]:
            # Mandatory parent in the directly preceding layer keeps the
            # graph connected and genuinely layered.
            add_edge(rng.choice(layers[level - 1]), task_name)
            if rng.random() < extra_edge_probability and level >= 2:
                source_level = rng.randrange(0, level)
                add_edge(rng.choice(layers[source_level]), task_name)

    return TaskGraph(name=name, tasks=tasks, edges=edges)
