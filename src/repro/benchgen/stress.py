"""Stress-tier instances: far beyond the paper's mul1–mul12 scale.

The suite's 8–32-task modes exercise correctness, but the PV-DVS
kernels are dominated by fixed per-call overhead at that size — their
asymptotic behaviour only shows on graphs an order of magnitude
larger.  These specs stretch every structural axis (12+ modes, 200+
tasks per mode, 6+ PEs, 3 links) while staying inside the generator's
validated parameter ranges, so DVS performance is measured where the
timing-cone waves and the descent heap actually dominate.

Generation is deterministic per spec seed, like the suite; the
instances are registered in the problem registry as ``stress1`` /
``stress2`` and consumed by ``benchmarks/bench_dvs.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.benchgen.multimode import MultiModeSpec, generate_problem
from repro.problem import Problem

#: The stress specs.  Mode/task counts are chosen so one instance
#: leans wide (many modes) and the other deep (largest graphs).
STRESS_SPECS: Tuple[MultiModeSpec, ...] = (
    MultiModeSpec(
        name="stress1",
        seed=901,
        mode_tasks=(
            200, 210, 220, 230, 240, 200,
            210, 220, 230, 240, 250, 260,
        ),
        pe_count=6,
        cl_count=3,
    ),
    MultiModeSpec(
        name="stress2",
        seed=902,
        mode_tasks=(
            260, 280, 300, 240, 260, 280,
            300, 240, 260, 280, 300, 320, 240, 260,
        ),
        pe_count=8,
        cl_count=3,
    ),
)

_SPEC_BY_NAME: Dict[str, MultiModeSpec] = {
    spec.name: spec for spec in STRESS_SPECS
}


def stress_problem(name: str) -> Problem:
    """Generate one stress instance by name (``stress1`` / ``stress2``)."""
    try:
        spec = _SPEC_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown stress instance {name!r}; choose from "
            f"{sorted(_SPEC_BY_NAME)}"
        ) from None
    return generate_problem(spec)
