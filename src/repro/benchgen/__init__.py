"""Benchmark generation: the mul1–mul12 suite and the smart phone.

The paper evaluates on 12 automatically generated multi-mode examples
(3–5 modes of 8–32 tasks on 2–4 PEs with 1–3 links) plus a smart-phone
case study whose eight-mode OMSM is given in the paper's Fig. 1a.  The
original generated instances are not published, so
:mod:`repro.benchgen.multimode` re-generates structurally equivalent
instances from the stated parameters (deterministically, per seed), and
:mod:`repro.benchgen.smartphone` hand-builds the smart phone from the
GSM 06.10 / JPEG / MP3 decoder structures the paper profiled.
"""

from repro.benchgen.random_graphs import random_task_graph
from repro.benchgen.multimode import MultiModeSpec, generate_problem
from repro.benchgen.suite import SUITE_SPECS, load_suite, suite_problem
from repro.benchgen.smartphone import smartphone_problem
from repro.benchgen.tgff import dump_tgff, load_tgff, parse_tgff, save_tgff
from repro.benchgen import registry

__all__ = [
    "registry",
    "MultiModeSpec",
    "SUITE_SPECS",
    "generate_problem",
    "load_suite",
    "random_task_graph",
    "smartphone_problem",
    "suite_problem",
    "dump_tgff",
    "load_tgff",
    "parse_tgff",
    "save_tgff",
]
