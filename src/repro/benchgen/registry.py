"""The problem registry: every named benchmark instance in one place.

Historically each entry point (``cli.py``, the examples, the
experiment drivers) carried its own ``if name == "smartphone" ...``
branching; the registry replaces that with a single lookup shared by
the CLI, the :mod:`repro.api` facade and the campaign runtime.

Instances are registered as zero-argument *loaders* so that importing
the registry stays cheap — a problem is only generated when actually
requested.  The built-in names are the paper's ``mul1`` … ``mul12``
suite and the ``smartphone`` case study; applications can
:func:`register` their own instances (e.g. for campaign specs over
custom problems).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.benchgen.smartphone import smartphone_problem
from repro.benchgen.stress import STRESS_SPECS, stress_problem
from repro.benchgen.suite import SUITE_SPECS, suite_problem
from repro.problem import Problem

_LOADERS: Dict[str, Callable[[], Problem]] = {}


def register(
    name: str,
    loader: Callable[[], Problem],
    replace: bool = False,
) -> None:
    """Register ``loader`` under ``name``.

    Re-registering an existing name raises unless ``replace=True`` —
    silently shadowing a built-in benchmark would corrupt experiment
    provenance.
    """
    if not replace and name in _LOADERS:
        raise ValueError(
            f"problem {name!r} is already registered; pass replace=True "
            f"to override"
        )
    _LOADERS[name] = loader


def unregister(name: str) -> None:
    """Remove a registered name (missing names are ignored)."""
    _LOADERS.pop(name, None)


def names() -> List[str]:
    """All registered instance names, sorted (suite order preserved
    for ``mulN`` by zero-padding-free natural sort)."""

    def key(name: str):
        digits = "".join(ch for ch in name if ch.isdigit())
        prefix = "".join(ch for ch in name if not ch.isdigit())
        return (prefix, int(digits) if digits else -1)

    return sorted(_LOADERS, key=key)


def get(name: str) -> Problem:
    """Load one registered instance by name.

    Raises ``KeyError`` with the full list of valid names — the
    message every entry point shows for an unknown instance.
    """
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise KeyError(
            f"unknown problem {name!r}; valid names: {', '.join(names())}"
        ) from None
    return loader()


def _register_builtins() -> None:
    for spec in SUITE_SPECS:
        # Bind spec.name by value, not by loop variable.
        register(spec.name, lambda name=spec.name: suite_problem(name))
    register("smartphone", smartphone_problem)
    for spec in STRESS_SPECS:
        register(spec.name, lambda name=spec.name: stress_problem(name))


_register_builtins()
