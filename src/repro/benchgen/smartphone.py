"""The smart phone real-life benchmark (paper Fig. 1 and Table 3).

The paper's case study combines a GSM cellular phone, an MP3 player and
a digital camera in one device, specified as the eight-mode OMSM of
Fig. 1a with the quoted execution probabilities (74 % radio link
control, 9 % GSM codec, 10 % MP3 playback, the rest on photo handling
and network search).  The original task graphs were extracted from
GSM 06.10 (toast), the IJG JPEG decoder and mpeg3play and profiled on
real hardware; those profiles are not published, so this module
re-builds the task graphs from the well-known structure of the three
codecs (LPC/STP/LTP/RPE stages for GSM, Huffman → dequantiser →
stereo/alias → IMDCT → synthesis filterbank for MP3, Huffman →
dequantiser → IDCT → colour transform per strip for JPEG) with software
timings at realistic magnitudes and hardware implementations 5–100×
faster, exactly the assumption the paper states for its own hardware
numbers.

The architecture matches the paper: one DVS-enabled GPP and two ASICs
on a single bus.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.architecture.communication_link import CommunicationLink
from repro.architecture.platform import Architecture
from repro.architecture.processing_element import PEKind, ProcessingElement
from repro.architecture.technology import TaskImplementation, TechnologyLibrary
from repro.problem import Problem
from repro.specification.mode import Mode
from repro.specification.omsm import OMSM, ModeTransition
from repro.specification.task_graph import CommEdge, Task, TaskGraph

#: Discrete rail voltages of the DVS-enabled GPP.
DVS_LEVELS: Tuple[float, ...] = (1.2, 1.8, 2.4, 3.3)

# ----------------------------------------------------------------------
# Technology table
#
# Per task type: software execution time (ms) and power (W) on the GPP,
# plus the hardware option: (speed-up, energy ratio vs software, core
# area in cells, which ASICs implement it).  ``None`` = software-only
# (control-dominated functions that gain nothing in hardware).
# ----------------------------------------------------------------------

_HW = Tuple[float, float, float, Tuple[str, ...]]

_TYPES: Dict[str, Tuple[float, float, Optional[_HW]]] = {
    # --- radio link control (control-dominated, mostly SW) -----------
    "MEAS": (0.90, 0.0225, (8.0, 8e-3, 180.0, ("ASIC1",))),
    "PWR": (0.50, 0.02, None),
    "HOV": (0.70, 0.021, None),
    "FDET": (0.40, 0.019, None),
    "RRC": (0.80, 0.023, None),
    # --- network search ------------------------------------------------
    "SCAN": (1.60, 0.026, (12.0, 6e-3, 260.0, ("ASIC1",))),
    "FFT": (2.40, 0.03, (60.0, 2e-3, 340.0, ("ASIC1", "ASIC2"))),
    "SYNC": (1.10, 0.025, (20.0, 4e-3, 220.0, ("ASIC1",))),
    "BCCH": (0.90, 0.022, None),
    # --- GSM 06.10 full-rate codec (toast) -----------------------------
    "PCMIO": (0.20, 0.0175, None),
    "PRE": (0.35, 0.02, (10.0, 6e-3, 160.0, ("ASIC1",))),
    "LPC": (1.40, 0.0275, (25.0, 3e-3, 300.0, ("ASIC1",))),
    "STP": (1.10, 0.026, (30.0, 3e-3, 280.0, ("ASIC1", "ASIC2"))),
    "LTP": (1.30, 0.027, (30.0, 3e-3, 290.0, ("ASIC1", "ASIC2"))),
    "RPE": (0.90, 0.025, (22.0, 4e-3, 240.0, ("ASIC1",))),
    "POST": (0.45, 0.021, None),
    # --- MPEG-1 layer-3 decoder (mpeg3play) ----------------------------
    "HDR": (0.30, 0.019, None),
    "SIDE": (0.40, 0.02, None),
    "HD": (1.80, 0.028, (40.0, 2.5e-3, 320.0, ("ASIC2",))),
    "DEQ": (1.20, 0.026, (35.0, 3e-3, 260.0, ("ASIC2",))),
    "STEREO": (0.60, 0.022, (15.0, 5e-3, 200.0, ("ASIC2",))),
    "AA": (0.70, 0.023, (18.0, 5e-3, 210.0, ("ASIC2",))),
    "IDCT": (2.00, 0.029, (80.0, 1.5e-3, 360.0, ("ASIC1", "ASIC2"))),
    "PCM": (0.35, 0.02, None),
    # --- IJG JPEG decoder ----------------------------------------------
    "CT": (1.50, 0.027, (45.0, 2.5e-3, 300.0, ("ASIC2",))),
    "DISP": (0.80, 0.023, None),
    # --- camera / JPEG encoder -----------------------------------------
    "SENS": (1.00, 0.024, None),
    "BAYER": (1.60, 0.0275, (30.0, 3e-3, 310.0, ("ASIC1",))),
    "WB": (0.90, 0.024, (20.0, 4e-3, 230.0, ("ASIC1",))),
    "DCT": (2.00, 0.029, (80.0, 1.5e-3, 360.0, ("ASIC1", "ASIC2"))),
    "QNT": (0.80, 0.024, (30.0, 3e-3, 240.0, ("ASIC2",))),
    "HENC": (1.40, 0.027, (35.0, 2.5e-3, 300.0, ("ASIC2",))),
    "STORE": (0.60, 0.021, None),
}

#: Payload size (bits) used on most edges; frame-sized transfers.
_FRAME_BITS = 2048.0
_BLOCK_BITS = 4096.0


class _GraphBuilder:
    """Accumulates tasks/edges for one mode's task graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.tasks: List[Task] = []
        self.edges: List[CommEdge] = []
        self._names: set = set()

    def task(
        self,
        name: str,
        task_type: str,
        deadline: Optional[float] = None,
    ) -> str:
        if name in self._names:
            raise ValueError(f"duplicate task {name!r} in {self.name!r}")
        self._names.add(name)
        self.tasks.append(
            Task(name=name, task_type=task_type, deadline=deadline)
        )
        return name

    def edge(self, src: str, dst: str, bits: float = _FRAME_BITS) -> None:
        self.edges.append(CommEdge(src=src, dst=dst, data_bits=bits))

    def chain(self, names: Sequence[str], bits: float = _FRAME_BITS) -> None:
        for src, dst in zip(names, names[1:]):
            self.edge(src, dst, bits)

    def build(self) -> TaskGraph:
        return TaskGraph(self.name, self.tasks, self.edges)


# ----------------------------------------------------------------------
# Application blocks
# ----------------------------------------------------------------------


def _add_rlc_block(builder: _GraphBuilder, prefix: str = "rlc") -> str:
    """Radio link control: measurements, handover, power control.

    Returns the name of the block's sink task (the RRC update), so
    composite modes can hang further functionality off it if needed.
    """
    meas_serving = builder.task(f"{prefix}_meas_serving", "MEAS")
    meas_neigh = builder.task(f"{prefix}_meas_neighbour", "MEAS")
    power = builder.task(f"{prefix}_power_ctrl", "PWR")
    handover = builder.task(f"{prefix}_handover", "HOV")
    failure = builder.task(f"{prefix}_failure_detect", "FDET")
    rrc = builder.task(f"{prefix}_rrc_update", "RRC")
    builder.edge(meas_serving, power)
    builder.edge(meas_serving, failure)
    builder.edge(meas_neigh, handover)
    builder.edge(power, rrc)
    builder.edge(handover, rrc)
    builder.edge(failure, rrc)
    return rrc


def _add_network_search_block(
    builder: _GraphBuilder, prefix: str = "ns"
) -> str:
    """Carrier scan, FCH/SCH synchronisation, BCCH decoding."""
    scan = builder.task(f"{prefix}_rf_scan", "SCAN")
    correlate = builder.task(f"{prefix}_correlate_fft", "FFT")
    sync_fch = builder.task(f"{prefix}_sync_fch", "SYNC")
    sync_sch = builder.task(f"{prefix}_sync_sch", "SYNC")
    bcch = builder.task(f"{prefix}_decode_bcch", "BCCH")
    builder.chain([scan, correlate, sync_fch, sync_sch, bcch], _BLOCK_BITS)
    return bcch


def _add_gsm_codec_block(
    builder: _GraphBuilder, prefix: str = "gsm", subframes: int = 4
) -> None:
    """GSM 06.10 full-rate speech transcoding, both directions.

    The encoder splits each 20 ms frame into four 5 ms sub-frames for
    short-term/long-term prediction and RPE coding; the decoder runs the
    inverse chain.  This mirrors the structure of the toast sources the
    paper profiled.
    """
    pcm_in = builder.task(f"{prefix}_pcm_in", "PCMIO")
    pre = builder.task(f"{prefix}_preprocess", "PRE")
    lpc = builder.task(f"{prefix}_lpc_analysis", "LPC")
    mux = builder.task(f"{prefix}_frame_mux", "RRC")
    builder.chain([pcm_in, pre, lpc])
    for sub in range(subframes):
        stp = builder.task(f"{prefix}_stp_enc{sub}", "STP")
        ltp = builder.task(f"{prefix}_ltp_enc{sub}", "LTP")
        rpe = builder.task(f"{prefix}_rpe_enc{sub}", "RPE")
        builder.edge(lpc, stp)
        builder.chain([stp, ltp, rpe])
        builder.edge(rpe, mux)

    demux = builder.task(f"{prefix}_frame_demux", "RRC")
    post = builder.task(f"{prefix}_postfilter", "POST")
    pcm_out = builder.task(f"{prefix}_pcm_out", "PCMIO")
    for sub in range(subframes):
        rpe_d = builder.task(f"{prefix}_rpe_dec{sub}", "RPE")
        ltp_d = builder.task(f"{prefix}_ltp_dec{sub}", "LTP")
        stp_d = builder.task(f"{prefix}_stp_dec{sub}", "STP")
        builder.edge(demux, rpe_d)
        builder.chain([rpe_d, ltp_d, stp_d])
        builder.edge(stp_d, post)
    builder.chain([post, pcm_out])


def _add_mp3_block(
    builder: _GraphBuilder,
    prefix: str = "mp3",
    granules: int = 2,
    channels: int = 2,
    deq_deadline: Optional[float] = None,
    idct_deadline: Optional[float] = None,
) -> None:
    """MPEG-1 layer-3 frame decoding (mpeg3play structure).

    Header/side-info parsing feeds per-granule/channel Huffman decoding
    and dequantisation; stereo processing joins the channels of each
    granule; alias reduction, IMDCT and the synthesis filterbank (an
    FFT-based polyphase stage) finish per channel into the PCM output.
    The optional deadlines reproduce the annotations of paper Fig. 1b
    (dequantiser θ = 25 ms, IDCT θ = 15 ms); the IDCT deadline is
    applied to the first granule — the second granule's output is due
    at the end of the frame, i.e. with the period.
    """
    header = builder.task(f"{prefix}_header", "HDR")
    side = builder.task(f"{prefix}_side_info", "SIDE")
    pcm = builder.task(f"{prefix}_pcm_out", "PCM")
    builder.chain([header, side])
    for granule in range(granules):
        stereo = builder.task(f"{prefix}_stereo_g{granule}", "STEREO")
        for channel in range(channels):
            tag = f"g{granule}c{channel}"
            huffman = builder.task(f"{prefix}_huffman_{tag}", "HD")
            deq = builder.task(
                f"{prefix}_dequant_{tag}", "DEQ", deadline=deq_deadline
            )
            builder.edge(side, huffman, _BLOCK_BITS)
            builder.chain([huffman, deq], _BLOCK_BITS)
            builder.edge(deq, stereo)
        for channel in range(channels):
            tag = f"g{granule}c{channel}"
            alias = builder.task(f"{prefix}_alias_{tag}", "AA")
            imdct = builder.task(
                f"{prefix}_imdct_{tag}",
                "IDCT",
                deadline=idct_deadline if granule == 0 else None,
            )
            synth = builder.task(f"{prefix}_synth_{tag}", "FFT")
            builder.edge(stereo, alias)
            builder.chain([alias, imdct, synth], _BLOCK_BITS)
            builder.edge(synth, pcm)


def _add_jpeg_block(
    builder: _GraphBuilder,
    prefix: str = "jpg",
    strips: int = 8,
) -> None:
    """Baseline JPEG decoding (IJG structure), unrolled per MCU strip."""
    header = builder.task(f"{prefix}_parse_header", "HDR")
    display = builder.task(f"{prefix}_assemble_display", "DISP")
    for strip in range(strips):
        huffman = builder.task(f"{prefix}_huffman_s{strip}", "HD")
        deq = builder.task(f"{prefix}_dequant_s{strip}", "DEQ")
        idct = builder.task(f"{prefix}_idct_s{strip}", "IDCT")
        colour = builder.task(f"{prefix}_colour_s{strip}", "CT")
        builder.edge(header, huffman, _BLOCK_BITS)
        builder.chain([huffman, deq, idct, colour], _BLOCK_BITS)
        builder.edge(colour, display, _BLOCK_BITS)


def _add_camera_block(
    builder: _GraphBuilder, prefix: str = "cam", strips: int = 4
) -> None:
    """Image acquisition plus JPEG encoding of the captured frame."""
    sensor = builder.task(f"{prefix}_sensor_read", "SENS")
    bayer = builder.task(f"{prefix}_bayer_interp", "BAYER")
    balance = builder.task(f"{prefix}_white_balance", "WB")
    store = builder.task(f"{prefix}_store_flash", "STORE")
    builder.chain([sensor, bayer, balance], _BLOCK_BITS)
    for strip in range(strips):
        dct = builder.task(f"{prefix}_dct_s{strip}", "DCT")
        quant = builder.task(f"{prefix}_quant_s{strip}", "QNT")
        encode = builder.task(f"{prefix}_huffenc_s{strip}", "HENC")
        builder.edge(balance, dct, _BLOCK_BITS)
        builder.chain([dct, quant, encode], _BLOCK_BITS)
        builder.edge(encode, store, _BLOCK_BITS)


# ----------------------------------------------------------------------
# Modes and OMSM
# ----------------------------------------------------------------------

#: (mode name, execution probability Ψ, period φ in seconds)
_MODES: Tuple[Tuple[str, float, float], ...] = (
    ("network_search", 0.01, 0.050),
    ("rlc", 0.74, 0.025),
    ("gsm_codec_rlc", 0.09, 0.020),
    ("mp3_rlc", 0.10, 0.025),
    ("mp3_network_search", 0.01, 0.025),
    ("photo_rlc", 0.02, 0.060),
    ("photo_network_search", 0.01, 0.060),
    ("take_photo", 0.02, 0.100),
)


def _build_mode_graph(mode_name: str) -> TaskGraph:
    builder = _GraphBuilder(f"smartphone_{mode_name}")
    if mode_name == "network_search":
        _add_network_search_block(builder)
    elif mode_name == "rlc":
        _add_rlc_block(builder)
    elif mode_name == "gsm_codec_rlc":
        _add_gsm_codec_block(builder)
        _add_rlc_block(builder)
    elif mode_name == "mp3_rlc":
        _add_mp3_block(builder, deq_deadline=0.025, idct_deadline=0.015)
        _add_rlc_block(builder)
    elif mode_name == "mp3_network_search":
        _add_mp3_block(builder, deq_deadline=0.025, idct_deadline=0.015)
        _add_network_search_block(builder)
    elif mode_name == "photo_rlc":
        _add_jpeg_block(builder)
        _add_rlc_block(builder)
    elif mode_name == "photo_network_search":
        _add_jpeg_block(builder)
        _add_network_search_block(builder)
    elif mode_name == "take_photo":
        _add_camera_block(builder)
    else:  # pragma: no cover - table and function kept in sync
        raise ValueError(f"unknown smart phone mode {mode_name!r}")
    return builder.build()


#: Transitions of the Fig. 1a state machine with their events.
_TRANSITIONS: Tuple[Tuple[str, str], ...] = (
    ("network_search", "rlc"),            # network found
    ("rlc", "network_search"),            # network lost
    ("rlc", "gsm_codec_rlc"),             # incoming call / user request
    ("gsm_codec_rlc", "rlc"),             # terminate call
    ("rlc", "mp3_rlc"),                   # play audio
    ("mp3_rlc", "rlc"),                   # terminate audio
    ("mp3_rlc", "mp3_network_search"),    # network lost
    ("mp3_network_search", "mp3_rlc"),    # network found
    ("mp3_network_search", "network_search"),  # terminate audio
    ("rlc", "photo_rlc"),                 # show photo
    ("photo_rlc", "rlc"),                 # terminate photo
    ("photo_rlc", "photo_network_search"),      # network lost
    ("photo_network_search", "photo_rlc"),      # network found
    ("photo_network_search", "network_search"),  # terminate photo
    ("rlc", "take_photo"),                # take photo
    ("take_photo", "photo_rlc"),          # photo taken -> show photo
    ("network_search", "mp3_network_search"),   # play audio w/o network
)

#: Maximal mode transition time (seconds) for every transition.
_TRANSITION_LIMIT = 0.010


def smartphone_architecture() -> Architecture:
    """One DVS-enabled GPP plus two ASICs on a single bus (paper setup)."""
    gpp = ProcessingElement(
        name="GPP",
        kind=PEKind.GPP,
        static_power=1.0e-3,
        voltage_levels=DVS_LEVELS,
        threshold_voltage=0.4,
    )
    asic1 = ProcessingElement(
        name="ASIC1",
        kind=PEKind.ASIC,
        area=1400.0,
        static_power=0.6e-3,
    )
    asic2 = ProcessingElement(
        name="ASIC2",
        kind=PEKind.ASIC,
        area=1400.0,
        static_power=0.6e-3,
    )
    bus = CommunicationLink(
        name="BUS",
        connects=["GPP", "ASIC1", "ASIC2"],
        bandwidth_bps=8e6,
        comm_power=1.2e-3,
        static_power=0.4e-3,
    )
    return Architecture("smartphone_arch", [gpp, asic1, asic2], [bus])


def smartphone_technology() -> TechnologyLibrary:
    """Implementation table derived from the :data:`_TYPES` figures."""
    entries: List[TaskImplementation] = []
    for task_type, (sw_ms, sw_power, hw) in _TYPES.items():
        sw_time = sw_ms * 1e-3
        entries.append(
            TaskImplementation(
                task_type=task_type,
                pe="GPP",
                exec_time=sw_time,
                power=sw_power,
            )
        )
        if hw is None:
            continue
        speedup, energy_ratio, area, asics = hw
        hw_time = sw_time / speedup
        hw_energy = sw_time * sw_power * energy_ratio
        for asic in asics:
            entries.append(
                TaskImplementation(
                    task_type=task_type,
                    pe=asic,
                    exec_time=hw_time,
                    power=hw_energy / hw_time,
                    area=area,
                )
            )
    return TechnologyLibrary(entries)


def smartphone_problem(dvs_enabled: bool = True) -> Problem:
    """The complete smart phone co-synthesis instance.

    Parameters
    ----------
    dvs_enabled:
        When false the GPP's voltage levels are stripped, yielding the
        fixed-voltage system of Table 3's first row.  (DVS is only
        *used* when the synthesis config asks for it, so the default
        instance serves both rows; this switch exists for experiments
        that must prevent scaling entirely.)
    """
    modes = [
        Mode(
            name=name,
            task_graph=_build_mode_graph(name),
            probability=probability,
            period=period,
        )
        for name, probability, period in _MODES
    ]
    transitions = [
        ModeTransition(src=src, dst=dst, max_time=_TRANSITION_LIMIT)
        for src, dst in _TRANSITIONS
    ]
    omsm = OMSM("smartphone", modes, transitions)
    architecture = smartphone_architecture()
    if not dvs_enabled:
        gpp = architecture.pe("GPP")
        gpp.voltage_levels = ()
    return Problem(omsm, architecture, smartphone_technology())
