"""Persistent design library with exact re-scoring under any Ψ.

Equation (1) is *linear* in the probability vector:

    p̄(Ψ) = Σ_O (p̄_dyn(O) + p̄_stat(O)) · Ψ_O

and the per-mode powers depend only on the mapping/schedule — not on
Ψ — so a design synthesised once can be scored under *any* probability
vector by a dot product over its stored per-mode power vector.  No
re-simulation, no approximation: :meth:`DesignRecord.score` reproduces
:func:`repro.power.energy_model.average_power` bit-for-bit because it
iterates the same mode order with the same accumulation arithmetic.

The library persists as a single JSON file written with the
:func:`repro.runtime.checkpoint.atomic_write_json` discipline (temp
file + fsync + ``os.replace``), so a kill mid-save never tears it.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import SpecificationError
from repro.runtime.checkpoint import atomic_write_json, _read_json

PathLike = Union[str, pathlib.Path]

#: Schema version of the persisted library; bump on incompatible change.
LIBRARY_VERSION = 1


def psi_distance(
    a: Mapping[str, float], b: Mapping[str, float]
) -> float:
    """Total-variation distance ``0.5 · Σ_O |a_O - b_O|`` in ``[0, 1]``."""
    modes = set(a) | set(b)
    return 0.5 * sum(
        abs(a.get(mode, 0.0) - b.get(mode, 0.0)) for mode in modes
    )


@dataclass
class DesignRecord:
    """One stored design: genes + the vectors needed to re-score it.

    ``mode_powers`` maps mode name → ``{"dynamic": W, "static": W}`` in
    OMSM insertion order (the order :func:`average_power` iterates);
    ``psi`` is the probability vector the design was synthesised for;
    ``area_used`` is the per-PE area of the core allocation (cells) —
    Ψ-independent, stored for inspection and admission policies.
    """

    name: str
    genes: Tuple[str, ...]
    psi: Dict[str, float]
    mode_powers: Dict[str, Dict[str, float]]
    area_used: Dict[str, float] = field(default_factory=dict)
    feasible: bool = True
    origin: str = "synthesis"
    generations: int = 0
    evaluations: int = 0
    cpu_time: float = 0.0

    def score(self, psi: Mapping[str, float]) -> float:
        """Equation (1) under ``psi`` — exact, no re-simulation.

        Mirrors :func:`repro.power.energy_model.average_power`: same
        mode iteration order, same ``(dyn + stat) · Ψ_O`` accumulation,
        so the result matches a fresh evaluation to the last bit.
        """
        total = 0.0
        for mode, entry in self.mode_powers.items():
            try:
                weight = psi[mode]
            except KeyError:
                raise SpecificationError(
                    f"probability vector misses mode {mode!r}"
                ) from None
            total += (entry["dynamic"] + entry["static"]) * weight
        return total

    def mode_power(self, mode_name: str) -> float:
        """Total (dynamic + static) power of one mode, in watts."""
        entry = self.mode_powers[mode_name]
        return entry["dynamic"] + entry["static"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "genes": list(self.genes),
            "psi": dict(self.psi),
            "mode_powers": {
                mode: dict(entry)
                for mode, entry in self.mode_powers.items()
            },
            "area_used": dict(self.area_used),
            "feasible": self.feasible,
            "origin": self.origin,
            "generations": self.generations,
            "evaluations": self.evaluations,
            "cpu_time": self.cpu_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignRecord":
        return cls(
            name=str(data["name"]),
            genes=tuple(data["genes"]),
            psi={k: float(v) for k, v in data["psi"].items()},
            mode_powers={
                mode: {
                    "dynamic": float(entry["dynamic"]),
                    "static": float(entry["static"]),
                }
                for mode, entry in data["mode_powers"].items()
            },
            area_used={
                k: float(v)
                for k, v in data.get("area_used", {}).items()
            },
            feasible=bool(data.get("feasible", True)),
            origin=str(data.get("origin", "synthesis")),
            generations=int(data.get("generations", 0)),
            evaluations=int(data.get("evaluations", 0)),
            cpu_time=float(data.get("cpu_time", 0.0)),
        )

    @classmethod
    def from_result(
        cls, name: str, result: Any, origin: str = "synthesis"
    ) -> "DesignRecord":
        """Build a record from a ``SynthesisResult``."""
        best = result.best
        return cls(
            name=name,
            genes=tuple(best.mapping.genes),
            psi=best.problem.omsm.probability_vector(),
            mode_powers={
                mode: dict(entry)
                for mode, entry in result.mode_powers.items()
            },
            area_used=dict(best.cores.area_used),
            feasible=best.metrics.is_feasible,
            origin=origin,
            generations=result.generations,
            evaluations=result.evaluations,
            cpu_time=result.cpu_time,
        )


class DesignLibrary:
    """An ordered collection of :class:`DesignRecord` with Ψ queries.

    Records keep insertion order; names are unique (re-adding a name
    replaces the record — the adaptation loop refreshes designs).
    """

    def __init__(
        self, records: Optional[List[DesignRecord]] = None
    ) -> None:
        self._records: Dict[str, DesignRecord] = {}
        for record in records or []:
            self.add(record)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, record: DesignRecord) -> DesignRecord:
        self._records[record.name] = record
        return record

    def remove(self, name: str) -> None:
        self._records.pop(name, None)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def records(self) -> Tuple[DesignRecord, ...]:
        return tuple(self._records.values())

    def get(self, name: str) -> DesignRecord:
        try:
            return self._records[name]
        except KeyError:
            raise SpecificationError(
                f"design library has no record {name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    # ------------------------------------------------------------------
    # Ψ queries
    # ------------------------------------------------------------------

    def best(
        self,
        psi: Mapping[str, float],
        feasible_only: bool = True,
    ) -> Tuple[DesignRecord, float]:
        """The stored design with minimal Equation (1) power under ``psi``.

        Ties break toward the earlier-admitted record, which keeps the
        controller's decisions deterministic.
        """
        best_record: Optional[DesignRecord] = None
        best_score = 0.0
        for record in self._records.values():
            if feasible_only and not record.feasible:
                continue
            score = record.score(psi)
            if best_record is None or score < best_score:
                best_record = record
                best_score = score
        if best_record is None:
            raise SpecificationError(
                "design library holds no "
                + ("feasible " if feasible_only else "")
                + "record"
            )
        return best_record, best_score

    def nearest(
        self, psi: Mapping[str, float], count: int = 1
    ) -> List[DesignRecord]:
        """Records whose synthesis-Ψ is closest to ``psi`` (TV distance).

        Ties break by insertion order (stable sort), keeping warm-start
        seeding deterministic.
        """
        ranked = sorted(
            self._records.values(),
            key=lambda record: psi_distance(record.psi, psi),
        )
        return ranked[: max(0, count)]

    def lower_bound(self, psi: Mapping[str, float]) -> float:
        """Per-mode best-of-library bound: ``Σ_O Ψ_O · min_r p_r(O)``.

        No single stored design generally achieves this — it combines
        the best mode powers across *different* records — so it bounds
        from below what any library design (and plausibly a light
        re-synthesis) could reach.  The gap between the library's best
        design and this bound is the *library-span regret* that triggers
        re-synthesis.
        """
        if not self._records:
            raise SpecificationError("design library is empty")
        modes = next(iter(self._records.values())).mode_powers.keys()
        total = 0.0
        for mode in modes:
            try:
                weight = psi[mode]
            except KeyError:
                raise SpecificationError(
                    f"probability vector misses mode {mode!r}"
                ) from None
            total += weight * min(
                record.mode_power(mode)
                for record in self._records.values()
            )
        return total

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": LIBRARY_VERSION,
            "records": [
                record.to_dict() for record in self._records.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignLibrary":
        version = data.get("version")
        if version != LIBRARY_VERSION:
            raise SpecificationError(
                f"unsupported design library version {version!r} "
                f"(expected {LIBRARY_VERSION})"
            )
        return cls(
            [DesignRecord.from_dict(entry) for entry in data["records"]]
        )

    def save(self, path: PathLike) -> pathlib.Path:
        """Atomically persist the library as one JSON file."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, self.to_dict())
        return path

    @classmethod
    def load(cls, path: PathLike) -> "DesignLibrary":
        return cls.from_dict(
            _read_json(pathlib.Path(path), "design library")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DesignLibrary(records={len(self._records)})"
