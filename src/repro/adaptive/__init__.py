"""Online Ψ-adaptation: close the loop from observed usage to synthesis.

The paper optimises for a *given* mode-execution probability vector Ψ
(Equation 1), but deployed devices only reveal their true Ψ at run
time — and it drifts per user and over time.  This package keeps a
deployed design near-optimal as the observed Ψ moves:

* :mod:`~repro.adaptive.estimator` — streaming Ψ estimation with
  exponential forgetting from ``(mode, dwell)`` events;
* :mod:`~repro.adaptive.library` — a persistent design library whose
  records carry **per-mode** power vectors, so any stored design is
  re-scored *exactly* under any Ψ (p̄ is linear in Ψ) without a single
  re-simulation;
* :mod:`~repro.adaptive.drift` — regret/distance drift detection with
  hysteresis and cooldown;
* :mod:`~repro.adaptive.controller` — the closed loop: swap to the
  library's best design on drift (charging the OMSM mode-transition
  time as switching cost) and, when the whole library is stale, launch
  a warm-started re-synthesis seeded from the nearest stored designs.
"""

from repro.adaptive.controller import (
    AdaptationConfig,
    AdaptationController,
    AdaptationReport,
)
from repro.adaptive.drift import DriftConfig, DriftDecision, DriftDetector
from repro.adaptive.estimator import PsiEstimator
from repro.adaptive.library import DesignLibrary, DesignRecord

__all__ = [
    "AdaptationConfig",
    "AdaptationController",
    "AdaptationReport",
    "DesignLibrary",
    "DesignRecord",
    "DriftConfig",
    "DriftDecision",
    "DriftDetector",
    "PsiEstimator",
]
