"""Drift detection: when does the deployed design stop being the right one?

Two complementary triggers, both evaluated on the *estimated* Ψ:

* **Regret** — the relative excess power of the deployed design over
  the library's best design under the current estimate,
  ``(p̄_deployed(Ψ̂) - p̄_best(Ψ̂)) / p̄_best(Ψ̂)``.  This is the
  decision-theoretic trigger: it fires only when switching would
  actually help, however far Ψ̂ has wandered.
* **Distance** — the total-variation distance between Ψ̂ and the
  deployed design's synthesis-Ψ.  This is the early-warning trigger:
  a large distributional shift flags staleness even while the library
  happens to contain no better design yet (it is what justifies
  *re-synthesis* rather than a swap).

A detector without damping would thrash: Ψ̂ hovers around a threshold
and every crossing fires an adaptation.  Two mechanisms prevent that —
**hysteresis** (after firing, the detector disarms until the triggers
fall below ``hysteresis × threshold``) and a **cooldown** (a minimum
simulated-time gap between consecutive firings).  Both are expressed in
the same units the controller experiences (relative power / seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.adaptive.library import psi_distance
from repro.errors import SpecificationError


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds and damping of the drift detector.

    ``regret_threshold`` and ``distance_threshold`` arm the trigger;
    ``hysteresis`` (in ``(0, 1]``) scales them down to the re-arming
    level — after a firing, a *new* drift episode requires both
    triggers to first retreat below ``hysteresis × threshold``;
    ``cooldown`` is the minimal simulated time between firings, and
    (when positive) also re-arms the detector once elapsed, so
    persistent drift retries at the cooldown cadence; with
    ``cooldown = 0`` the detector latches until recovery.
    ``min_confidence`` gates everything on estimator saturation.
    """

    regret_threshold: float = 0.05
    distance_threshold: float = 0.15
    hysteresis: float = 0.5
    cooldown: float = 0.0
    min_confidence: float = 0.5

    def __post_init__(self) -> None:
        if self.regret_threshold < 0:
            raise SpecificationError(
                f"regret_threshold must be non-negative, "
                f"got {self.regret_threshold}"
            )
        if self.distance_threshold < 0:
            raise SpecificationError(
                f"distance_threshold must be non-negative, "
                f"got {self.distance_threshold}"
            )
        if not 0.0 < self.hysteresis <= 1.0:
            raise SpecificationError(
                f"hysteresis must be in (0, 1], got {self.hysteresis}"
            )
        if self.cooldown < 0:
            raise SpecificationError(
                f"cooldown must be non-negative, got {self.cooldown}"
            )
        if not 0.0 <= self.min_confidence < 1.0:
            raise SpecificationError(
                f"min_confidence must be in [0, 1), "
                f"got {self.min_confidence}"
            )


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one detector update."""

    drift: bool
    regret: float
    distance: float
    reason: str
    armed: bool
    cooling: bool


@dataclass
class DriftDetector:
    """Stateful regret/distance trigger with hysteresis and cooldown."""

    config: DriftConfig = field(default_factory=DriftConfig)
    _armed: bool = True
    _last_fired: Optional[float] = None

    @property
    def armed(self) -> bool:
        return self._armed

    def update(
        self,
        now: float,
        psi_estimate: Mapping[str, float],
        confidence: float,
        deployed_score: float,
        best_score: float,
        deployed_psi: Mapping[str, float],
    ) -> DriftDecision:
        """Evaluate the triggers at simulated time ``now``.

        ``deployed_score`` / ``best_score`` are Equation (1) powers of
        the deployed design and the library's best design under the
        current estimate ``psi_estimate``.
        """
        cfg = self.config
        if best_score <= 0:
            raise SpecificationError(
                f"best_score must be positive, got {best_score}"
            )
        regret = (deployed_score - best_score) / best_score
        distance = psi_distance(psi_estimate, deployed_psi)

        cooling = (
            self._last_fired is not None
            and now - self._last_fired < cfg.cooldown
        )
        if confidence < cfg.min_confidence:
            return DriftDecision(
                drift=False,
                regret=regret,
                distance=distance,
                reason="low_confidence",
                armed=self._armed,
                cooling=cooling,
            )

        # Hysteresis: once fired, stay disarmed until both triggers
        # retreat below the scaled-down thresholds — a new drift
        # *episode* needs a recovery in between, so hovering around a
        # threshold fires once, not on every crossing.  With a positive
        # cooldown the detector additionally re-arms when the cooldown
        # elapses: persistent drift (Ψ̂ still converging toward a new
        # regime that no current library design serves) retries at the
        # cooldown cadence instead of freezing the controller forever.
        if not self._armed:
            recovered = (
                regret <= cfg.hysteresis * cfg.regret_threshold
                and distance <= cfg.hysteresis * cfg.distance_threshold
            )
            if recovered or (cfg.cooldown > 0 and not cooling):
                self._armed = True
            else:
                return DriftDecision(
                    drift=False,
                    regret=regret,
                    distance=distance,
                    reason="disarmed",
                    armed=False,
                    cooling=cooling,
                )

        over_regret = regret > cfg.regret_threshold
        over_distance = distance > cfg.distance_threshold
        if not (over_regret or over_distance):
            return DriftDecision(
                drift=False,
                regret=regret,
                distance=distance,
                reason="below_threshold",
                armed=True,
                cooling=cooling,
            )
        if cooling:
            return DriftDecision(
                drift=False,
                regret=regret,
                distance=distance,
                reason="cooldown",
                armed=True,
                cooling=True,
            )

        self._armed = False
        self._last_fired = now
        reason = "regret" if over_regret else "distance"
        if over_regret and over_distance:
            reason = "regret+distance"
        return DriftDecision(
            drift=True,
            regret=regret,
            distance=distance,
            reason=reason,
            armed=False,
            cooling=False,
        )

    def reset(self) -> None:
        self._armed = True
        self._last_fired = None
