"""Streaming Ψ estimation with exponential forgetting.

The estimator consumes ``(mode, dwell)`` events — from
:func:`repro.simulation.trace.generate_trace` visits or any other
source — and maintains an exponentially-forgotten estimate of the
fraction of time spent in each mode.  With forgetting time constant
``τ`` the weight credited to mode ``m`` is

    w_m(t) = ∫ 1[mode(s) = m] · e^{-(t-s)/τ} ds

so a dwell of length ``d`` in mode ``m`` first decays *all* weights by
``e^{-d/τ}`` and then adds ``τ·(1 - e^{-d/τ})`` to ``w_m`` (the closed
form of the integral over the dwell).  The estimate is the normalised
weight vector, optionally blended with a prior (typically the
design-time Ψ) whose influence fades as real observation accumulates.

``confidence() = 1 - e^{-T/τ}`` — the fraction of the steady-state
total weight already accumulated after ``T`` seconds of observation —
gives downstream consumers (the drift detector) a principled gate
against acting on a cold estimator.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import SpecificationError

#: ln 2 — converts a half-life into the exponential time constant.
_LN2 = math.log(2.0)


class PsiEstimator:
    """Exponentially-forgotten mode-time-fraction estimator.

    Parameters
    ----------
    mode_names:
        The modes of the OMSM; the estimate always covers exactly this
        set (unseen modes estimate to the prior/zero mass).
    half_life:
        Observation half-life in seconds of simulated time: weight from
        ``half_life`` seconds ago counts half as much as fresh weight.
    prior:
        Optional prior Ψ (e.g. the design-time vector).  Blended with
        the observed weights with mass ``prior_weight``.
    prior_weight:
        Pseudo-observation mass of the prior, in seconds.  ``0``
        disables the prior entirely.
    """

    def __init__(
        self,
        mode_names: Sequence[str],
        half_life: float,
        prior: Optional[Mapping[str, float]] = None,
        prior_weight: float = 0.0,
    ) -> None:
        if not mode_names:
            raise SpecificationError("estimator needs at least one mode")
        if half_life <= 0:
            raise SpecificationError(
                f"half_life must be positive, got {half_life}"
            )
        if prior_weight < 0:
            raise SpecificationError(
                f"prior_weight must be non-negative, got {prior_weight}"
            )
        if prior is not None:
            missing = [m for m in mode_names if m not in prior]
            if missing:
                raise SpecificationError(
                    f"prior probability vector misses modes {missing}"
                )
        self._mode_names: Tuple[str, ...] = tuple(mode_names)
        self.half_life = half_life
        self.tau = half_life / _LN2
        self._weights: Dict[str, float] = {m: 0.0 for m in mode_names}
        self._prior = (
            {m: float(prior[m]) for m in mode_names}
            if prior is not None
            else None
        )
        self._prior_weight = prior_weight if prior is not None else 0.0
        self.observed_time = 0.0
        self.observations = 0

    @property
    def mode_names(self) -> Tuple[str, ...]:
        return self._mode_names

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe(self, mode: str, dwell: float) -> None:
        """Account one contiguous stay of ``dwell`` seconds in ``mode``."""
        if mode not in self._weights:
            raise SpecificationError(
                f"estimator knows no mode {mode!r} "
                f"(modes: {list(self._mode_names)})"
            )
        if dwell < 0:
            raise SpecificationError(
                f"dwell time must be non-negative, got {dwell}"
            )
        if dwell == 0:
            return
        factor = math.exp(-dwell / self.tau)
        for name in self._weights:
            self._weights[name] *= factor
        self._weights[mode] += self.tau * (1.0 - factor)
        self.observed_time += dwell
        self.observations += 1

    def observe_trace(self, visits: Iterable) -> None:
        """Feed a sequence of objects with ``mode`` and ``duration``.

        Accepts :class:`repro.simulation.trace.ModeVisit` instances or
        plain ``(mode, dwell)`` pairs.
        """
        for visit in visits:
            if isinstance(visit, tuple):
                mode, dwell = visit
            else:
                mode, dwell = visit.mode, visit.duration
            self.observe(mode, dwell)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def estimate(self) -> Dict[str, float]:
        """The current Ψ estimate — normalised, prior-blended.

        The prior behaves like ``prior_weight`` seconds of observation
        made *before* t = 0: it is subject to the same exponential
        forgetting as real weight, so its influence genuinely fades —
        after a few half-lives of observation the estimate is pure
        data.
        """
        prior_mass = (
            self._prior_weight
            * math.exp(-self.observed_time / self.tau)
            if self._prior is not None
            else 0.0
        )
        totals: Dict[str, float] = {}
        for name in self._mode_names:
            mass = self._weights[name]
            if self._prior is not None:
                mass += prior_mass * self._prior[name]
            totals[name] = mass
        total = sum(totals.values())
        if total <= 0.0:
            # Nothing observed and no prior: fall back to uniform.
            uniform = 1.0 / len(self._mode_names)
            return {name: uniform for name in self._mode_names}
        return {name: mass / total for name, mass in totals.items()}

    def confidence(self) -> float:
        """Saturation of the forgetting window, in ``[0, 1)``.

        ``1 - e^{-T/τ}`` where ``T`` is the total observed time: ~0.5
        after one half-life of observation, → 1 as the window fills.
        """
        return 1.0 - math.exp(-self.observed_time / self.tau)

    def reset(self) -> None:
        """Discard all observations (the prior survives)."""
        for name in self._weights:
            self._weights[name] = 0.0
        self.observed_time = 0.0
        self.observations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PsiEstimator(modes={len(self._mode_names)}, "
            f"half_life={self.half_life}, "
            f"observed={self.observed_time:.3g}s, "
            f"confidence={self.confidence():.3f})"
        )
