"""The closed adaptation loop: observe → estimate → detect → act.

:class:`AdaptationController` consumes a mode trace visit by visit,
accounting the deployed design's energy as it goes, and reacts to
drift in two escalating ways:

1. **Swap** — deploy the library's best design under the estimated Ψ.
   The swap is not free: the OMSM's mode-transition time (FPGA
   reconfiguration, paper Section 2.1.1) is charged as switching cost —
   the old design keeps burning power in the current mode for the
   transition duration.
2. **Re-synthesis** — when even the library's best design is far from
   the per-mode lower bound (library-span regret) or the estimated Ψ is
   far from every stored design's Ψ (novelty), the controller launches
   a *warm-started* GA run: the initial population is seeded from the
   deployed design and the library's nearest designs (plus mutants and
   random fill), injected through the existing
   :class:`~repro.synthesis.state.GAState` / ``run(resume=)``
   checkpoint hooks.  The new design is admitted to the library and
   deployed if it wins.

Every decision is observable: counters/histograms on the process-global
:data:`repro.obs.metrics.REGISTRY` and structured events on an optional
``events.jsonl`` stream (same format as campaign events).  All decisions
are driven by seeded RNG and simulated time only, so a fixed seed makes
the whole closed loop bit-reproducible.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.adaptive.drift import DriftConfig, DriftDetector
from repro.adaptive.estimator import PsiEstimator
from repro.adaptive.library import (
    DesignLibrary,
    DesignRecord,
    psi_distance,
)
from repro.errors import SpecificationError
from repro.mapping.encoding import MappingString
from repro.obs.metrics import REGISTRY
from repro.problem import Problem
from repro.runtime.events import EventLog
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer
from repro.synthesis.state import GAState


@dataclass(frozen=True)
class AdaptationConfig:
    """All knobs of the adaptation loop.

    ``half_life``/``prior_weight`` parameterise the Ψ estimator (the
    prior is the deployed design's synthesis-Ψ); ``drift`` holds the
    detector thresholds; ``resynthesis_regret`` and
    ``resynthesis_novelty`` escalate a drift event into a warm-started
    re-synthesis when the library-span regret or the distance from
    every stored Ψ exceeds them; ``synthesis`` configures the GA used
    for re-synthesis (its ``population_size`` bounds the warm seeds);
    ``seed_designs`` is how many nearest library designs seed the warm
    population; ``switch_time`` overrides the charged mode-transition
    time (default: the largest finite ``t_T^max`` of the OMSM);
    ``max_resyntheses`` caps GA launches per run; ``seed`` drives every
    random decision of the loop.
    """

    half_life: float = 50.0
    prior_weight: float = 5.0
    drift: DriftConfig = field(default_factory=DriftConfig)
    resynthesis_regret: float = 0.05
    resynthesis_novelty: float = 0.10
    synthesis: SynthesisConfig = field(default_factory=SynthesisConfig)
    seed_designs: int = 3
    switch_time: Optional[float] = None
    max_resyntheses: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise SpecificationError(
                f"half_life must be positive, got {self.half_life}"
            )
        if self.seed_designs < 1:
            raise SpecificationError(
                f"seed_designs must be >= 1, got {self.seed_designs}"
            )
        if self.max_resyntheses < 0:
            raise SpecificationError(
                f"max_resyntheses must be non-negative, "
                f"got {self.max_resyntheses}"
            )


@dataclass
class AdaptationDecision:
    """One recorded controller action (for the report and tests)."""

    time: float
    kind: str  # "swap" | "resynthesis"
    design: str
    regret: float
    distance: float
    reason: str


@dataclass
class AdaptationReport:
    """Outcome of one closed-loop run over a trace."""

    energy: float
    simulated_time: float
    deployed: str
    psi_estimate: Dict[str, float]
    decisions: List[AdaptationDecision] = field(default_factory=list)
    swaps: int = 0
    resyntheses: int = 0
    drift_events: int = 0

    @property
    def average_power(self) -> float:
        if self.simulated_time <= 0:
            return 0.0
        return self.energy / self.simulated_time


def trace_energy(
    record: DesignRecord, visits: Iterable[Any]
) -> float:
    """Energy (joules) one fixed design burns over a trace.

    The static-deployment baseline the closed-loop demo compares
    against: ``Σ dwell · p(mode)`` with no switching and no adaptation.
    """
    total = 0.0
    for visit in visits:
        if isinstance(visit, tuple):
            mode, dwell = visit
        else:
            mode, dwell = visit.mode, visit.duration
        total += dwell * record.mode_power(mode)
    return total


def warm_population(
    problem: Problem,
    config: SynthesisConfig,
    seeds: List[Tuple[str, ...]],
    rng: random.Random,
) -> List[Tuple[str, ...]]:
    """A GA initial population seeded from known-good designs.

    Layout: the seeds verbatim, then mutants of the seeds (round-robin,
    ~2 expected gene flips each) up to half the population, then
    software-biased/random individuals alternating for exploration.
    Deterministic given ``rng``; genes transfer verbatim because
    re-targeting Ψ leaves the gene layout unchanged
    (:meth:`repro.problem.Problem.with_probabilities`).  The re-target
    also carries over the per-mode result cache (cached schedules and
    powers are Ψ-independent), so re-evaluating seeds and their mutants
    under the new probabilities is mostly cache hits — the warm start
    is warm at the evaluation level too, not just in the population.
    """
    if not seeds:
        raise SpecificationError("warm start needs at least one seed")
    size = config.population_size
    genome_length = problem.genome_length()
    mutant_rate = min(1.0, 2.0 / max(1, genome_length))
    population: List[Tuple[str, ...]] = []
    for genes in seeds:
        if len(population) >= size:
            break
        population.append(tuple(genes))
    index = 0
    while len(population) < (size + 1) // 2:
        parent = MappingString(problem, seeds[index % len(seeds)])
        population.append(parent.mutate(rng, mutant_rate).genes)
        index += 1
    toggle = True
    while len(population) < size:
        if toggle:
            genome = MappingString.random_software_biased(problem, rng)
        else:
            genome = MappingString.random(problem, rng)
        population.append(genome.genes)
        toggle = not toggle
    return population[:size]


def warm_state(
    problem: Problem,
    config: SynthesisConfig,
    seeds: List[Tuple[str, ...]],
    rng: random.Random,
) -> GAState:
    """A generation-0 :class:`GAState` carrying a warm population.

    ``run(resume=)`` treats it as a snapshot taken before generation 1,
    so the GA evaluates the seeded population instead of a random one —
    warm start through the existing checkpoint hooks, no new GA API.
    """
    population = warm_population(problem, config, seeds, rng)
    return GAState(
        generation=0,
        rng_state=rng.getstate(),
        population=population,
        best_genes=None,
        best_fitness=math.inf,
        stagnant=0,
        area_stall=0,
        timing_stall=0,
        transition_stall=0,
        history=[],
        evaluations=0,
    )


class AdaptationController:
    """Closed-loop Ψ adaptation over one problem instance.

    Parameters
    ----------
    problem:
        The design-time instance (its OMSM carries the design-time Ψ).
    library:
        The design library; must contain at least one feasible design.
        The controller deploys ``initial_design`` (or the library's
        best under the design-time Ψ) and admits re-synthesised
        designs back into it.
    config:
        See :class:`AdaptationConfig`.
    event_log:
        Optional :class:`~repro.runtime.events.EventLog`; adaptation
        events ride the same JSONL stream campaign events use.
    initial_design:
        Name of the record to deploy initially.
    jobs:
        Worker processes for re-synthesis GA runs; ``None`` keeps the
        value from ``config.synthesis.jobs``.
    """

    def __init__(
        self,
        problem: Problem,
        library: DesignLibrary,
        config: Optional[AdaptationConfig] = None,
        event_log: Optional[EventLog] = None,
        initial_design: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self.problem = problem
        self.library = library
        self.config = config or AdaptationConfig()
        self.events = event_log
        self.jobs = jobs
        design_psi = problem.omsm.probability_vector()
        if initial_design is not None:
            self.deployed = library.get(initial_design)
        else:
            self.deployed, _ = library.best(design_psi)
        self.estimator = PsiEstimator(
            problem.omsm.mode_names,
            half_life=self.config.half_life,
            prior=self.deployed.psi,
            prior_weight=self.config.prior_weight,
        )
        self.detector = DriftDetector(self.config.drift)
        self.now = 0.0
        self.energy = 0.0
        self.decisions: List[AdaptationDecision] = []
        self.drift_events = 0
        self.swaps = 0
        self.resyntheses = 0
        self._current_mode: Optional[str] = None

    # ------------------------------------------------------------------
    # Switching cost
    # ------------------------------------------------------------------

    def switch_time(self) -> float:
        """Charged per swap: the OMSM's largest finite ``t_T^max``.

        Deploying a different design means reloading cores — the same
        physical process a mode transition performs — so its time bound
        is the natural cost model.  ``config.switch_time`` overrides.
        """
        if self.config.switch_time is not None:
            return self.config.switch_time
        times = [
            t.max_time
            for t in self.problem.omsm.transitions
            if math.isfinite(t.max_time)
        ]
        return max(times) if times else 0.0

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def step(self, mode: str, dwell: float) -> None:
        """Account one visit, then check for (and react to) drift."""
        self._current_mode = mode
        self.energy += dwell * self.deployed.mode_power(mode)
        self.now += dwell
        self.estimator.observe(mode, dwell)
        self._check_drift()

    def run(self, visits: Iterable[Any]) -> AdaptationReport:
        """Consume a whole trace and return the run report."""
        for visit in visits:
            if isinstance(visit, tuple):
                mode, dwell = visit
            else:
                mode, dwell = visit.mode, visit.duration
            self.step(mode, dwell)
        return self.report()

    def report(self) -> AdaptationReport:
        return AdaptationReport(
            energy=self.energy,
            simulated_time=self.now,
            deployed=self.deployed.name,
            psi_estimate=self.estimator.estimate(),
            decisions=list(self.decisions),
            swaps=self.swaps,
            resyntheses=self.resyntheses,
            drift_events=self.drift_events,
        )

    # ------------------------------------------------------------------
    # Drift handling
    # ------------------------------------------------------------------

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    def _check_drift(self) -> None:
        psi_hat = self.estimator.estimate()
        confidence = self.estimator.confidence()
        deployed_score = self.deployed.score(psi_hat)
        best, best_score = self.library.best(psi_hat)
        decision = self.detector.update(
            now=self.now,
            psi_estimate=psi_hat,
            confidence=confidence,
            deployed_score=deployed_score,
            best_score=best_score,
            deployed_psi=self.deployed.psi,
        )
        REGISTRY.inc("adapt_drift_checks")
        REGISTRY.observe("adapt_regret", max(0.0, decision.regret))
        REGISTRY.set_gauge("adapt_confidence", confidence)
        REGISTRY.set_gauge("adapt_energy_joules", self.energy)
        if not decision.drift:
            return
        self.drift_events += 1
        REGISTRY.inc("adapt_drift_detected")
        self._emit(
            "adapt_drift",
            time=self.now,
            reason=decision.reason,
            regret=decision.regret,
            distance=decision.distance,
            deployed=self.deployed.name,
            psi=psi_hat,
        )
        if best.name != self.deployed.name and best_score < deployed_score:
            self._swap(best, decision.regret, decision.distance, "library")
            deployed_score = best_score
        self._maybe_resynthesize(
            psi_hat, best_score, decision.regret, decision.distance
        )

    def _swap(
        self,
        record: DesignRecord,
        regret: float,
        distance: float,
        reason: str,
    ) -> None:
        cost_time = self.switch_time()
        if self._current_mode is not None:
            # During reconfiguration the old design keeps running (and
            # burning power) in the current mode.
            self.energy += cost_time * self.deployed.mode_power(
                self._current_mode
            )
        previous = self.deployed.name
        self.deployed = record
        self.swaps += 1
        REGISTRY.inc("adapt_swaps")
        self.decisions.append(
            AdaptationDecision(
                time=self.now,
                kind="swap",
                design=record.name,
                regret=regret,
                distance=distance,
                reason=reason,
            )
        )
        self._emit(
            "adapt_swap",
            time=self.now,
            previous=previous,
            design=record.name,
            switch_time=cost_time,
            reason=reason,
        )

    def _maybe_resynthesize(
        self,
        psi_hat: Mapping[str, float],
        best_score: float,
        regret: float,
        distance: float,
    ) -> None:
        if self.resyntheses >= self.config.max_resyntheses:
            return
        lower = self.library.lower_bound(psi_hat)
        span_regret = (
            (best_score - lower) / lower if lower > 0 else 0.0
        )
        novelty = min(
            psi_distance(record.psi, psi_hat)
            for record in self.library.records
        )
        if (
            span_regret <= self.config.resynthesis_regret
            and novelty <= self.config.resynthesis_novelty
        ):
            return
        self._emit(
            "adapt_resynthesis",
            time=self.now,
            span_regret=span_regret,
            novelty=novelty,
            psi=dict(psi_hat),
        )
        record = self.resynthesize(psi_hat)
        if (
            record.feasible
            and record.score(psi_hat) < self.deployed.score(psi_hat)
        ):
            self._swap(record, regret, distance, "resynthesis")

    def resynthesize(
        self, psi_hat: Mapping[str, float]
    ) -> DesignRecord:
        """Warm-started GA run at the estimated Ψ; admits the result."""
        self.resyntheses += 1
        REGISTRY.inc("adapt_resyntheses")
        target = self.problem.with_probabilities(dict(psi_hat))
        seeds: List[Tuple[str, ...]] = [self.deployed.genes]
        for record in self.library.nearest(
            psi_hat, self.config.seed_designs
        ):
            if record.genes not in seeds:
                seeds.append(record.genes)
        # Deterministic per-launch RNG: decisions stay bit-reproducible
        # under a fixed config seed however Ψ̂ evolved.
        rng = random.Random(
            self.config.seed * 1000003 + self.resyntheses
        )
        synthesis_config = self.config.synthesis
        if self.jobs is not None and self.jobs != synthesis_config.jobs:
            synthesis_config = dataclasses.replace(
                synthesis_config, jobs=self.jobs
            )
        state = warm_state(target, synthesis_config, seeds, rng)
        synthesizer = MultiModeSynthesizer(target, synthesis_config)
        result = synthesizer.run(resume=state)
        record = DesignRecord.from_result(
            f"resynth-{self.resyntheses}", result, origin="resynthesis"
        )
        self.library.add(record)
        self.decisions.append(
            AdaptationDecision(
                time=self.now,
                kind="resynthesis",
                design=record.name,
                regret=0.0,
                distance=psi_distance(record.psi, psi_hat),
                reason="library_stale",
            )
        )
        self._emit(
            "adapt_admitted",
            time=self.now,
            design=record.name,
            feasible=record.feasible,
            power=record.score(psi_hat),
            generations=result.generations,
        )
        return record
