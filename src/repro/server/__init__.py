"""Synthesis-as-a-service: the multi-tenant async campaign job server.

The traffic-serving skeleton in front of the campaign runtime:

* :mod:`repro.server.jobs` — durable job records and their
  ``queued -> running -> done/failed/cancelled`` state machine.
* :mod:`repro.server.scheduler` — per-tenant FIFO queues, weighted
  fair dispatch, admission control with typed backpressure.
* :mod:`repro.server.service` — the asyncio server: JSON-lines over a
  Unix socket, bounded worker-subprocess slots, restart recovery.
* :mod:`repro.server.worker` / :mod:`repro.server.workers` — the
  subprocess entry point and its process plumbing.
* :mod:`repro.server.client` — the synchronous stdlib client.

See ``docs/server.md`` for the protocol and operational semantics.
"""

from repro.server.client import ServerClient
from repro.server.jobs import (
    TERMINAL_STATES,
    JobState,
    JobStore,
    ServerJob,
)
from repro.server.protocol import PROTOCOL_VERSION
from repro.server.scheduler import Scheduler
from repro.server.service import SOCKET_FILENAME, CampaignServer, serve

__all__ = [
    "CampaignServer",
    "JobState",
    "JobStore",
    "PROTOCOL_VERSION",
    "Scheduler",
    "ServerClient",
    "ServerJob",
    "SOCKET_FILENAME",
    "TERMINAL_STATES",
    "serve",
]
