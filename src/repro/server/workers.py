"""Spawning, terminating and reclaiming campaign worker subprocesses.

The service keeps a bounded number of worker *slots*; each occupied
slot is one ``python -m repro.server.worker`` subprocess working a
job's run directory.  This module owns the process plumbing: the
command line and environment a worker needs (the ``repro`` package
location is prepended to ``PYTHONPATH`` so a bare-checkout server can
spawn workers without installation), graceful SIGTERM-then-SIGKILL
termination, and the startup-time reclamation of *stale* workers — a
``kill -9``-ed server may leave orphaned workers behind, and exactly
one writer per run directory is allowed before a job is requeued.
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import signal
import sys
import time
from typing import Callable, Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]

#: File the worker's stderr is appended to inside the job run dir.
WORKER_LOG_FILENAME = "worker.log"


def worker_command(
    run_dir: PathLike, parent_pid: Optional[int] = None
) -> List[str]:
    """Argv for one worker subprocess."""
    command = [
        sys.executable,
        "-m",
        "repro.server.worker",
        str(run_dir),
    ]
    if parent_pid is not None:
        command += ["--parent-pid", str(parent_pid)]
    return command


def worker_env() -> Dict[str, str]:
    """The inherited environment plus an import path for ``repro``.

    Prepending the package parent to ``PYTHONPATH`` lets the worker
    import the same ``repro`` the server runs, whether installed or
    imported from a source checkout via ``PYTHONPATH=src``.
    """
    import repro

    package_root = str(pathlib.Path(repro.__file__).parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    paths = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


async def spawn_worker(
    run_dir: PathLike, parent_pid: Optional[int] = None
) -> "asyncio.subprocess.Process":
    """Start one worker on ``run_dir``; stderr goes to ``worker.log``."""
    run_dir = pathlib.Path(run_dir)
    log_path = run_dir / WORKER_LOG_FILENAME
    with open(log_path, "ab") as log:
        return await asyncio.create_subprocess_exec(
            *worker_command(run_dir, parent_pid=parent_pid),
            env=worker_env(),
            stdin=asyncio.subprocess.DEVNULL,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=log,
        )


async def terminate_worker(
    process: "asyncio.subprocess.Process", grace: float = 10.0
) -> int:
    """SIGTERM a worker, escalate to SIGKILL after ``grace`` seconds.

    SIGTERM gives the campaign runner its graceful-interrupt path
    (final checkpoint is already durable, the summary export fires);
    the escalation bounds shutdown latency.  Returns the exit code.
    """
    if process.returncode is not None:
        return process.returncode
    process.terminate()
    try:
        await asyncio.wait_for(process.wait(), timeout=grace)
    except asyncio.TimeoutError:
        process.kill()
        await process.wait()
    assert process.returncode is not None
    return process.returncode


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def kill_stale_worker(
    pid: int,
    grace: float = 5.0,
    poll_interval: float = 0.1,
    sleep: Callable[[float], None] = time.sleep,
) -> bool:
    """Stop a worker left over from a previous server incarnation.

    Called during recovery before a formerly ``running`` job is
    requeued: two workers on one run directory would race each other's
    checkpoints and break the bit-identical resume guarantee.  SIGTERM
    first (graceful), SIGKILL after ``grace`` seconds.  Returns whether
    a live process had to be stopped.
    """
    if not pid_alive(pid):
        return False
    try:
        os.kill(pid, signal.SIGTERM)
    except ProcessLookupError:
        return False
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        if not pid_alive(pid):
            return True
        sleep(poll_interval)
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        return True
    # Give the kernel a beat to reap; the pid check is best-effort
    # (the stale worker is a child of the dead server, so init reaps).
    sleep(poll_interval)
    return True
