"""End-to-end smoke check for the campaign job server.

``make serve-smoke`` runs this module: it starts a real server
subprocess (through the ``repro-mm serve`` CLI path), submits a quick
``mul1`` campaign, polls it to completion, and asserts the served
result is **identical** to a direct in-process
:func:`repro.api.run_campaign` of the same spec — the
serve/submit/worker path must not perturb synthesis outcomes.  Exits
0 on success, 1 with a diagnostic on any mismatch or timeout.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.spec import CampaignSpec
from repro.server.client import ServerClient
from repro.server.service import SOCKET_FILENAME
from repro.server.workers import worker_env
from repro.synthesis.config import SynthesisConfig


def smoke_spec() -> CampaignSpec:
    """A seconds-scale campaign: one ``mul1`` cell, both policies."""
    return CampaignSpec(
        name="serve-smoke",
        instances=["mul1"],
        runs=1,
        base_seed=7,
        config=SynthesisConfig(
            population_size=8,
            max_generations=6,
            convergence_generations=4,
        ),
        checkpoint_every=2,
    )


def _start_server(state_dir: pathlib.Path) -> "subprocess.Popen[bytes]":
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--state",
            str(state_dir),
            "--slots",
            "1",
        ],
        env=worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_socket(
    client: ServerClient, server: "subprocess.Popen[bytes]", timeout: float
) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.poll() is not None:
            raise RuntimeError(
                f"server exited early with code {server.returncode}"
            )
        try:
            client.ping()
            return
        except Exception:
            time.sleep(0.1)
    raise RuntimeError(f"server socket not up after {timeout:.0f}s")


def run_smoke(timeout: float = 120.0) -> List[str]:
    """Run the check; returns a list of problems (empty = pass)."""
    from repro.api import run_campaign

    problems: List[str] = []
    spec = smoke_spec()
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        root = pathlib.Path(tmp)
        state_dir = root / "state"
        state_dir.mkdir()
        client = ServerClient(state_dir / SOCKET_FILENAME)
        server = _start_server(state_dir)
        try:
            _wait_for_socket(client, server, timeout=30.0)
            submitted = client.submit(spec, tenant="smoke")
            job = client.wait(submitted["job_id"], timeout=timeout)
            if job["state"] != "done":
                problems.append(
                    f"served job ended {job['state']!r} "
                    f"(error: {job.get('error')})"
                )
                return problems
            served = client.result(submitted["job_id"])["results"]
            reference = run_campaign(spec, run_dir=root / "direct")
            for campaign_job in spec.jobs():
                job_id = campaign_job.job_id
                expected = reference.results[job_id]
                got: Optional[Dict[str, Any]] = served.get(job_id)
                if got is None:
                    problems.append(f"served result missing {job_id}")
                    continue
                for field in ("power", "best_genes", "history",
                              "generations", "evaluations"):
                    want = getattr(expected, field)
                    if got.get(field) != want:
                        problems.append(
                            f"{job_id}.{field}: served {got.get(field)!r}"
                            f" != direct {want!r}"
                        )
        finally:
            try:
                client.shutdown()
                server.wait(timeout=15)
            except Exception:
                server.kill()
                server.wait()
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-smoke",
        description="server-vs-direct equivalence smoke check",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the served job",
    )
    args = parser.parse_args(argv)
    started = time.perf_counter()
    problems = run_smoke(timeout=args.timeout)
    elapsed = time.perf_counter() - started
    if problems:
        for problem in problems:
            print(f"serve-smoke: FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        f"serve-smoke: OK — served mul1 campaign matches direct "
        f"run_campaign ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
