"""The asyncio campaign job server (synthesis-as-a-service).

:class:`CampaignServer` is a long-running, multi-tenant front end to
the campaign runtime: clients submit campaign specs over a JSON-lines
Unix-socket protocol (:mod:`repro.server.protocol`), a weighted-fair
:class:`~repro.server.scheduler.Scheduler` picks what runs next, and a
bounded pool of worker *slots* executes each job's campaign in a
subprocess (:mod:`repro.server.worker`) so heavy synthesis never
stalls the event loop or other tenants.

Durability is delegated downward: the :class:`~repro.server.jobs.JobStore`
persists every job record atomically, and each job's campaign writes
its own checkpoints/results/events under ``<state_dir>/runs/<job_id>/``
through the existing :class:`~repro.runtime.runner.CampaignRunner`
discipline.  A server killed with ``kill -9`` therefore restarts
cleanly on the same state directory: stale workers are reclaimed,
formerly ``running`` jobs are requeued, and their campaigns resume
*bit-identically* from their latest checkpoints.

Observability: scheduler depth, per-tenant queued/running gauges,
admission rejections, job wait/run latency histograms and slot
utilisation all land in the process-global
:data:`repro.obs.metrics.REGISTRY`, exported into the server's
``run_summary.json`` after every job completion and on shutdown; the
server also appends its own lifecycle events to
``<state_dir>/events.jsonl``.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.errors import AdmissionError, ServerError
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.summary import write_run_summary
from repro.runtime.checkpoint import prepare_run_dir, spec_path
from repro.runtime.events import EVENTS_FILENAME, EventLog, events_path
from repro.runtime.spec import CampaignSpec
from repro.server import worker as worker_mod
from repro.server.jobs import JobState, JobStore, ServerJob, validate_tenant
from repro.server.protocol import (
    MAX_LINE_BYTES,
    decode_message,
    encode_message,
    error_for,
    ok_response,
)
from repro.server.scheduler import Scheduler
from repro.server.workers import (
    kill_stale_worker,
    spawn_worker,
    terminate_worker,
)

PathLike = Union[str, pathlib.Path]

#: Default socket file name inside a server state directory.
SOCKET_FILENAME = "server.sock"

#: Scheduler-loop fallback wakeup (the kick event is the fast path).
_POLL_SECONDS = 0.5

#: Stream-tail poll interval.
_STREAM_POLL_SECONDS = 0.15


class CampaignServer:
    """A multi-tenant asyncio job server over one state directory.

    Parameters
    ----------
    state_dir:
        Durable home of the job table, per-job campaign run
        directories, the server event stream and ``run_summary.json``.
    socket_path:
        Unix-socket path to serve on; defaults to
        ``<state_dir>/server.sock``.
    slots:
        Worker subprocesses allowed to run concurrently.
    tenant_quota / queue_bound / tenant_weights:
        Admission control and fairness knobs, see
        :class:`~repro.server.scheduler.Scheduler`.
    """

    def __init__(
        self,
        state_dir: PathLike,
        socket_path: Optional[PathLike] = None,
        slots: int = 2,
        tenant_quota: int = 8,
        queue_bound: int = 64,
        tenant_weights: Optional[Mapping[str, float]] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if slots < 1:
            raise ServerError(
                "server needs at least one worker slot", kind="invalid"
            )
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.socket_path = pathlib.Path(
            socket_path
            if socket_path is not None
            else self.state_dir / SOCKET_FILENAME
        )
        self.slots = slots
        self._clock = clock
        self._registry = registry if registry is not None else REGISTRY
        self.store = JobStore(self.state_dir, clock=clock)
        self.scheduler = Scheduler(
            quota=tenant_quota,
            queue_bound=queue_bound,
            weights=tenant_weights,
            registry=self._registry,
        )
        self._procs: Dict[str, "asyncio.subprocess.Process"] = {}
        self._reapers: Dict[str, "asyncio.Task[None]"] = {}
        self._events: Optional[EventLog] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._kick: Optional[asyncio.Event] = None
        self._draining = False
        self._started_monotonic = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serve until SIGTERM/SIGINT/``shutdown`` (blocking)."""
        asyncio.run(self.serve_forever())

    async def serve_forever(
        self,
        ready: Optional[Callable[["CampaignServer"], None]] = None,
    ) -> None:
        """Bind, recover, and serve until asked to stop."""
        loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._kick = asyncio.Event()
        self._draining = False
        self._started_monotonic = time.monotonic()
        self._events = EventLog(
            self.state_dir / EVENTS_FILENAME, clock=self._clock
        )
        self._registry.set_gauge("server_slots_total", self.slots)
        self._registry.set_gauge("server_slots_busy", 0)
        try:
            requeued = self._recover()
            # A previous incarnation's socket file would make bind fail;
            # a kill -9 never removes it, so clear it here.
            if self.socket_path.exists():
                self.socket_path.unlink()
            server = await asyncio.start_unix_server(
                self._handle_client,
                path=str(self.socket_path),
                limit=MAX_LINE_BYTES,
            )
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        signum, self._stop_event.set
                    )
                except (NotImplementedError, ValueError, RuntimeError):
                    pass  # non-main thread / unsupported loop
            self._emit(
                "server_started",
                pid=os.getpid(),
                socket=str(self.socket_path),
                slots=self.slots,
                requeued_jobs=requeued,
            )
            scheduler_task = asyncio.create_task(self._schedule_loop())
            if ready is not None:
                ready(self)
            await self._stop_event.wait()
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._drain_workers()
            await scheduler_task
            self._emit(
                "server_stopped",
                pid=os.getpid(),
                jobs=self.store.counts(),
            )
            self._write_summary()
        finally:
            if self._events is not None:
                self._events.close()
                self._events = None
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    def stop(self) -> None:
        """Request a graceful stop (thread-unsafe; use from the loop)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def _recover(self) -> int:
        """Reload the job table; requeue jobs orphaned by a dead server.

        A job found ``running`` has no live owner in this process:
        its worker either died with the previous server or is a stale
        orphan that must be stopped before the job is requeued (two
        writers on one run directory would corrupt the bit-identical
        resume).  The campaign's durable checkpoints make the requeue
        safe — the job resumes exactly where its last snapshot left it.
        """
        requeued = 0
        for job in self.store.jobs():
            if job.state is JobState.RUNNING:
                if job.worker_pid is not None:
                    kill_stale_worker(job.worker_pid)
                self.store.transition(job, JobState.QUEUED)
                self._emit(
                    "job_requeued",
                    job_id=job.job_id,
                    tenant=job.tenant,
                    resumes=job.resumes,
                )
                requeued += 1
            if job.state is JobState.QUEUED:
                self.scheduler.submit(job, enforce=False)
        return requeued

    # ------------------------------------------------------------------
    # Scheduling + worker slots
    # ------------------------------------------------------------------

    async def _schedule_loop(self) -> None:
        assert self._stop_event is not None and self._kick is not None
        while not self._stop_event.is_set():
            while not self._draining and len(self._procs) < self.slots:
                job = self.scheduler.next_job()
                if job is None:
                    break
                await self._dispatch(job)
            self._kick.clear()
            try:
                await asyncio.wait_for(
                    self._kick.wait(), timeout=_POLL_SECONDS
                )
            except asyncio.TimeoutError:
                pass

    async def _dispatch(self, job: ServerJob) -> None:
        run_dir = self.store.run_dir(job.job_id)
        self.store.transition(job, JobState.RUNNING)
        process = await spawn_worker(run_dir, parent_pid=os.getpid())
        job.worker_pid = process.pid
        self.store.save(job)
        self._procs[job.job_id] = process
        wait_seconds = max(
            0.0, (job.started_ts or 0.0) - job.submitted_ts
        )
        self._registry.observe(
            "server_job_wait_seconds", wait_seconds, tenant=job.tenant
        )
        self._registry.set_gauge("server_slots_busy", len(self._procs))
        self._emit(
            "job_dispatched",
            job_id=job.job_id,
            tenant=job.tenant,
            worker_pid=process.pid,
            wait_seconds=round(wait_seconds, 6),
        )
        task = asyncio.create_task(self._reap(job, process))
        self._reapers[job.job_id] = task
        task.add_done_callback(
            lambda _t, job_id=job.job_id: self._reapers.pop(job_id, None)
        )

    async def _reap(
        self, job: ServerJob, process: "asyncio.subprocess.Process"
    ) -> None:
        code = await process.wait()
        self._procs.pop(job.job_id, None)
        self.scheduler.release(job)
        run_seconds = max(
            0.0, float(self._clock()) - (job.started_ts or 0.0)
        )
        self._registry.inc(
            "server_slot_busy_seconds_total", run_seconds
        )
        self._registry.set_gauge("server_slots_busy", len(self._procs))
        self._registry.observe(
            "server_job_run_seconds", run_seconds, tenant=job.tenant
        )
        if job.cancel_requested:
            job.error = None
            self.store.transition(job, JobState.CANCELLED)
        elif code == worker_mod.EXIT_OK:
            job.error = None
            self.store.transition(job, JobState.DONE)
        elif code == worker_mod.EXIT_FAILED_JOBS:
            job.error = "campaign finished with failed jobs"
            self.store.transition(job, JobState.FAILED)
        elif self._draining:
            # We SIGTERMed the worker to shut down; the job's campaign
            # checkpointed and will resume after the next start.
            self.store.transition(job, JobState.QUEUED)
            self._emit(
                "job_requeued",
                job_id=job.job_id,
                tenant=job.tenant,
                resumes=job.resumes,
            )
            self._kick_scheduler()
            return
        else:
            job.error = f"worker exited with code {code}"
            self.store.transition(job, JobState.FAILED)
        self._registry.inc(
            "server_jobs_completed_total", state=job.state.value
        )
        self._emit(
            "job_completed",
            job_id=job.job_id,
            tenant=job.tenant,
            state=job.state.value,
            exit_code=code,
            run_seconds=round(run_seconds, 6),
            error=job.error,
        )
        self._write_summary()
        self._kick_scheduler()

    async def _drain_workers(self) -> None:
        """SIGTERM every running worker and wait for their reapers."""
        for process in list(self._procs.values()):
            if process.returncode is None:
                process.terminate()
        pending = [
            task for task in self._reapers.values() if not task.done()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        # Escalation safety net: anything still alive gets killed.
        for process in list(self._procs.values()):
            await terminate_worker(process, grace=0.0)

    def _kick_scheduler(self) -> None:
        if self._kick is not None:
            self._kick.set()

    # ------------------------------------------------------------------
    # Protocol connection handling
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        shutdown_requested = False
        try:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise ServerError(
                    "request line too long", kind="invalid"
                ) from None
            if not line:
                return
            request = decode_message(line)
            op = request.get("op")
            if op == "stream":
                await self._op_stream(request, writer)
            else:
                response = self._dispatch_op(op, request)
                writer.write(encode_message(response))
                await writer.drain()
                shutdown_requested = op == "shutdown" and response.get(
                    "ok", False
                )
        except Exception as exc:  # every failure answers on the wire
            try:
                writer.write(encode_message(error_for(exc)))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        if shutdown_requested:
            self.stop()

    def _dispatch_op(
        self, op: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "submit":
            return self._op_submit(request)
        if op == "status":
            return self._op_status(request)
        if op == "jobs":
            return self._op_jobs(request)
        if op == "cancel":
            return self._op_cancel(request)
        if op == "result":
            return self._op_result(request)
        if op == "ping":
            return ok_response(
                pong=True,
                pid=os.getpid(),
                uptime_seconds=round(self._uptime(), 3),
            )
        if op == "shutdown":
            return ok_response(stopping=True)
        raise ServerError(f"unknown op {op!r}", kind="invalid")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = request.get("spec")
        if not isinstance(payload, dict):
            raise ServerError(
                "submit needs a campaign spec object under 'spec'",
                kind="invalid",
            )
        spec = CampaignSpec.from_dict(payload)  # CampaignError -> invalid
        tenant = validate_tenant(str(request.get("tenant", "default")))
        try:
            priority = int(request.get("priority", 0) or 0)
        except (TypeError, ValueError):
            raise ServerError(
                "priority must be an integer", kind="invalid"
            ) from None
        try:
            self.scheduler.admit(tenant)
        except AdmissionError as exc:
            self._emit(
                "job_rejected",
                tenant=tenant,
                campaign=spec.name,
                reason=str(exc),
            )
            raise
        job = self.store.create(spec.to_dict(), tenant, priority)
        run_dir = prepare_run_dir(self.store.run_dir(job.job_id))
        spec.save(spec_path(run_dir))
        self.scheduler.submit(job, enforce=False)
        self._emit(
            "job_submitted",
            job_id=job.job_id,
            tenant=tenant,
            campaign=spec.name,
            priority=priority,
            total_jobs=len(spec.jobs()),
        )
        self._kick_scheduler()
        return ok_response(job_id=job.job_id, state=job.state.value)

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job_id")
        if job_id is not None:
            job = self.store.get(str(job_id))
            return ok_response(job=job.summary())
        tenants = sorted(
            {job.tenant for job in self.store.jobs()}
        )
        return ok_response(
            pid=os.getpid(),
            socket=str(self.socket_path),
            uptime_seconds=round(self._uptime(), 3),
            jobs=self.store.counts(),
            queue_depth=self.scheduler.depth,
            slots={"total": self.slots, "busy": len(self._procs)},
            tenants={
                tenant: {
                    "queued": self.scheduler.queued_count(tenant),
                    "running": self.scheduler.running_count(tenant),
                    "weight": self.scheduler.weight(tenant),
                }
                for tenant in tenants
            },
        )

    def _op_jobs(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = request.get("tenant")
        jobs = self.store.jobs(
            tenant=None if tenant is None else str(tenant)
        )
        return ok_response(jobs=[job.summary() for job in jobs])

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job_id")
        if not job_id:
            raise ServerError("cancel needs a job_id", kind="invalid")
        job = self.store.get(str(job_id))
        if job.terminal:
            raise ServerError(
                f"job {job.job_id} is already {job.state.value}",
                kind="conflict",
            )
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            self.store.transition(job, JobState.CANCELLED)
            self.scheduler.discard(job)
            self._registry.inc(
                "server_jobs_completed_total", state=job.state.value
            )
        else:  # running: SIGTERM the worker, the reaper finishes up
            self.store.save(job)
            process = self._procs.get(job.job_id)
            if process is not None and process.returncode is None:
                asyncio.ensure_future(terminate_worker(process))
        self._emit(
            "job_cancel_requested",
            job_id=job.job_id,
            tenant=job.tenant,
            state=job.state.value,
        )
        return ok_response(
            job_id=job.job_id,
            state=job.state.value,
            cancel_requested=True,
        )

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job_id")
        if not job_id:
            raise ServerError("result needs a job_id", kind="invalid")
        job = self.store.get(str(job_id))
        if not job.terminal:
            raise ServerError(
                f"job {job.job_id} is still {job.state.value}",
                kind="conflict",
            )
        from repro.runtime.checkpoint import load_result

        run_dir = self.store.run_dir(job.job_id)
        spec = CampaignSpec.from_dict(job.spec)
        results: Dict[str, Any] = {}
        for campaign_job in spec.jobs():
            record = load_result(run_dir, campaign_job.job_id)
            if record is not None:
                results[campaign_job.job_id] = record
        summary: Optional[Dict[str, Any]] = None
        summary_path = run_dir / "run_summary.json"
        if summary_path.exists():
            try:
                summary = json.loads(summary_path.read_text())
            except (OSError, json.JSONDecodeError):
                summary = None
        return ok_response(
            job=job.summary(), results=results, summary=summary
        )

    async def _op_stream(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Replay (and optionally follow) one job's campaign events."""
        job_id = request.get("job_id")
        if not job_id:
            raise ServerError("stream needs a job_id", kind="invalid")
        job = self.store.get(str(job_id))
        follow = bool(request.get("follow", False))
        path = events_path(self.store.run_dir(job.job_id))
        buffer = ""
        handle = None
        try:
            while True:
                if handle is None:
                    try:
                        handle = open(path, "r", encoding="utf-8")
                    except FileNotFoundError:
                        if not follow or job.terminal:
                            break
                        await asyncio.sleep(_STREAM_POLL_SECONDS)
                        continue
                line = handle.readline()
                if not line:
                    if not follow or job.terminal:
                        break
                    await asyncio.sleep(_STREAM_POLL_SECONDS)
                    continue
                buffer += line
                if not buffer.endswith("\n"):
                    # Torn tail mid-write: wait for the writer (or drop
                    # it at end-of-file when not following).
                    if not follow:
                        break
                    continue
                stripped = buffer.strip()
                buffer = ""
                if not stripped:
                    continue
                try:
                    event = json.loads(stripped)
                except json.JSONDecodeError:
                    continue
                writer.write(encode_message(ok_response(event=event)))
                await writer.drain()
        finally:
            if handle is not None:
                handle.close()
        writer.write(encode_message(ok_response(done=True)))
        await writer.drain()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _uptime(self) -> float:
        if not self._started_monotonic:
            return 0.0
        return max(0.0, time.monotonic() - self._started_monotonic)

    def _emit(self, kind: str, **fields: Any) -> None:
        if self._events is not None:
            self._events.emit(kind, **fields)

    def _write_summary(self) -> None:
        """Best-effort ``run_summary.json`` snapshot in the state dir."""
        try:
            write_run_summary(self.state_dir, self.server_summary())
        except OSError:
            pass

    def server_summary(self) -> Dict[str, Any]:
        """The server-shaped summary document (see ``docs/server.md``)."""
        uptime = self._uptime()
        busy_seconds = self._registry.counter_value(
            "server_slot_busy_seconds_total"
        )
        capacity = uptime * self.slots
        tenants: Dict[str, Dict[str, Any]] = {}
        for job in self.store.jobs():
            row = tenants.setdefault(
                job.tenant,
                {state.value: 0 for state in JobState},
            )
            row[job.state.value] += 1
        return {
            "version": 1,
            "kind": "server",
            "generated_at": round(float(self._clock()), 6),
            "state_dir": str(self.state_dir),
            "socket": str(self.socket_path),
            "uptime_seconds": round(uptime, 3),
            "jobs": self.store.counts(),
            "queue_depth": self.scheduler.depth,
            "slots": {
                "total": self.slots,
                "busy": len(self._procs),
                "busy_seconds": busy_seconds,
                "utilisation": (
                    busy_seconds / capacity if capacity > 0 else None
                ),
            },
            "tenants": tenants,
            "metrics": self._registry.to_dict(),
        }


def serve(
    state_dir: PathLike,
    socket_path: Optional[PathLike] = None,
    slots: int = 2,
    tenant_quota: int = 8,
    queue_bound: int = 64,
    tenant_weights: Optional[Mapping[str, float]] = None,
) -> None:
    """Construct a :class:`CampaignServer` and serve until stopped."""
    CampaignServer(
        state_dir,
        socket_path=socket_path,
        slots=slots,
        tenant_quota=tenant_quota,
        queue_bound=queue_bound,
        tenant_weights=tenant_weights,
    ).run()


__all__: List[str] = ["CampaignServer", "SOCKET_FILENAME", "serve"]
