"""Synchronous client for the campaign job server.

:class:`ServerClient` speaks the JSON-lines protocol over the server's
Unix socket with nothing but the standard library, so CLI commands,
tests and user scripts can talk to a server without touching asyncio.
One connection per request (the protocol is single-shot); ``stream``
keeps its connection open and yields events as they arrive.

Typed failures: an admission rejection raises
:class:`~repro.errors.AdmissionError` (back off and retry later), every
other server-reported error raises :class:`~repro.errors.ServerError`
with the protocol ``kind`` attached.
"""

from __future__ import annotations

import pathlib
import socket
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.errors import ServerError
from repro.runtime.spec import CampaignSpec
from repro.server.jobs import TERMINAL_STATES, JobState
from repro.server.protocol import (
    MAX_LINE_BYTES,
    decode_message,
    encode_message,
    raise_for_error,
)

PathLike = Union[str, pathlib.Path]

SpecLike = Union[CampaignSpec, Mapping[str, Any]]


def _spec_payload(spec: SpecLike) -> Dict[str, Any]:
    if isinstance(spec, CampaignSpec):
        return spec.to_dict()
    return dict(spec)


class ServerClient:
    """Talk to a :class:`~repro.server.service.CampaignServer`."""

    def __init__(
        self, socket_path: PathLike, timeout: float = 30.0
    ) -> None:
        self.socket_path = pathlib.Path(socket_path)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.timeout)
        try:
            conn.connect(str(self.socket_path))
        except OSError as exc:
            conn.close()
            raise ServerError(
                f"cannot reach server at {self.socket_path}: {exc}",
                kind="internal",
            ) from exc
        return conn

    @staticmethod
    def _read_line(handle: Any) -> bytes:
        line = handle.readline(MAX_LINE_BYTES + 1)
        if len(line) > MAX_LINE_BYTES:
            raise ServerError(
                "server response line too long", kind="invalid"
            )
        return line

    def _request(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        with self._connect() as conn:
            conn.sendall(encode_message(payload))
            with conn.makefile("rb") as handle:
                line = self._read_line(handle)
        if not line:
            raise ServerError(
                "server closed the connection without answering",
                kind="internal",
            )
        return raise_for_error(decode_message(line))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: SpecLike,
        tenant: str = "default",
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit a campaign; returns ``{"job_id": ..., "state": ...}``.

        Raises :class:`~repro.errors.AdmissionError` on backpressure.
        """
        return self._request(
            {
                "op": "submit",
                "spec": _spec_payload(spec),
                "tenant": tenant,
                "priority": priority,
            }
        )

    def status(
        self, job_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """One job's record, or the server overview without ``job_id``."""
        payload: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            payload["job_id"] = job_id
        return self._request(payload)

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        payload: Dict[str, Any] = {"op": "jobs"}
        if tenant is not None:
            payload["tenant"] = tenant
        response = self._request(payload)
        return list(response.get("jobs", []))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "cancel", "job_id": job_id})

    def result(self, job_id: str) -> Dict[str, Any]:
        """A terminal job's campaign results + run summary."""
        return self._request({"op": "result", "job_id": job_id})

    def stream(
        self, job_id: str, follow: bool = False
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's campaign events (tail of its ``events.jsonl``).

        With ``follow`` the server keeps the connection open and
        streams events until the job reaches a terminal state.
        """
        with self._connect() as conn:
            conn.sendall(
                encode_message(
                    {"op": "stream", "job_id": job_id, "follow": follow}
                )
            )
            if follow:
                conn.settimeout(None)
            with conn.makefile("rb") as handle:
                while True:
                    line = self._read_line(handle)
                    if not line:
                        return  # connection dropped mid-stream
                    response = raise_for_error(decode_message(line))
                    if response.get("done"):
                        return
                    event = response.get("event")
                    if isinstance(event, dict):
                        yield event

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop gracefully (running jobs requeue)."""
        return self._request({"op": "shutdown"})

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.2,
        sleep: Any = time.sleep,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final record."""
        terminal = {state.value for state in TERMINAL_STATES}
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)["job"]
            if job["state"] in terminal:
                return job
            if time.monotonic() >= deadline:
                raise ServerError(
                    f"job {job_id} still {job['state']!r} after "
                    f"{timeout:.0f}s",
                    kind="conflict",
                )
            sleep(poll_interval)

    def wait_until_running(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.1,
        sleep: Any = time.sleep,
    ) -> Dict[str, Any]:
        """Poll until the job left the queue (running or terminal)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)["job"]
            if job["state"] != JobState.QUEUED.value:
                return job
            if time.monotonic() >= deadline:
                raise ServerError(
                    f"job {job_id} still queued after {timeout:.0f}s",
                    kind="conflict",
                )
            sleep(poll_interval)
