"""The JSON-lines wire protocol of the campaign job server.

One request per connection: the client sends a single JSON object on
one line, the server answers with one JSON object per line.  Every
response carries ``"ok"``; errors carry a machine-readable ``kind``
plus a human message::

    -> {"op": "submit", "tenant": "team-a", "spec": {...}}
    <- {"ok": true, "job_id": "j000001-team-a", "state": "queued"}

    -> {"op": "status", "job_id": "nope"}
    <- {"ok": false, "error": {"kind": "not_found",
                               "message": "no job 'nope'"}}

The only multi-line response is ``stream``: the server replays (and,
with ``follow``, keeps tailing) the job's campaign ``events.jsonl``,
one ``{"ok": true, "event": {...}}`` line per event, terminated by
``{"ok": true, "done": true}``.

Everything here is transport-agnostic pure data plumbing shared by the
asyncio service and the synchronous client; only the standard library
is used.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Union

from repro.errors import AdmissionError, ServerError

#: Protocol revision; servers reject requests from a newer one.
PROTOCOL_VERSION = 1

#: Upper bound on one request/response line (campaign specs are small;
#: this is a safety valve against a stuck or hostile peer).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Operations the server understands.
OPS = (
    "submit",
    "status",
    "jobs",
    "cancel",
    "result",
    "stream",
    "ping",
    "shutdown",
)

#: Error kinds a response may carry.
ERROR_KINDS = (
    "invalid",
    "not_found",
    "conflict",
    "backpressure",
    "internal",
)


def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One protocol line, newline-terminated UTF-8."""
    return (json.dumps(dict(payload), sort_keys=False) + "\n").encode(
        "utf-8"
    )


def decode_message(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one protocol line; raises a typed error on junk."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ServerError(
                f"protocol line exceeds {MAX_LINE_BYTES} bytes",
                kind="invalid",
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServerError(
                f"protocol line is not UTF-8: {exc}", kind="invalid"
            ) from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServerError(
            f"protocol line is not valid JSON: {exc}", kind="invalid"
        ) from exc
    if not isinstance(payload, dict):
        raise ServerError(
            "protocol line must be a JSON object", kind="invalid"
        )
    return payload


def ok_response(**fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response


def error_response(kind: str, message: str) -> Dict[str, Any]:
    if kind not in ERROR_KINDS:
        kind = "internal"
    return {"ok": False, "error": {"kind": kind, "message": message}}


def error_for(exc: Exception) -> Dict[str, Any]:
    """Map an exception onto the wire error shape."""
    if isinstance(exc, ServerError):
        return error_response(exc.kind, str(exc))
    from repro.errors import CampaignError

    if isinstance(exc, CampaignError):
        return error_response("invalid", str(exc))
    return error_response("internal", f"{type(exc).__name__}: {exc}")


def raise_for_error(response: Mapping[str, Any]) -> Dict[str, Any]:
    """Client side: turn an error response back into a typed exception."""
    if response.get("ok"):
        return dict(response)
    error = response.get("error") or {}
    kind = str(error.get("kind", "internal"))
    message = str(error.get("message", "unknown server error"))
    if kind == "backpressure":
        raise AdmissionError(message)
    raise ServerError(message, kind=kind)
