"""Weighted fair scheduling with admission control across tenants.

Each tenant owns a FIFO queue (priority-ordered within the tenant:
higher ``priority`` first, submission order within a priority).  The
scheduler picks the next job by *weighted fair queuing* on job counts:
every tenant carries a virtual time that advances by ``1 / weight`` per
dispatched job, and the tenant with the smallest virtual time among
those with queued work goes next.  A tenant that becomes active starts
at the current virtual-time floor, so a newcomer is never starved by a
flooding tenant — with equal weights, a single job submitted behind a
10-deep backlog of another tenant is dispatched within one slot
turnover (the acceptance property ``tests/server/test_scheduler.py``
pins).

Admission control is explicit backpressure, not silent queuing: a
submission beyond the tenant's ``quota`` of queued+running jobs, or
beyond the server-wide ``queue_bound``, raises the typed
:class:`~repro.errors.AdmissionError` and increments
``server_admission_rejections_total{tenant}``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import AdmissionError
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.server.jobs import JobState, ServerJob

#: Heap entry: (-priority, enqueue sequence, job).
_Entry = Tuple[int, int, ServerJob]


class Scheduler:
    """Per-tenant FIFO queues under weighted fair dispatch."""

    def __init__(
        self,
        quota: int = 8,
        queue_bound: int = 64,
        weights: Optional[Mapping[str, float]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if quota < 1:
            raise ValueError("tenant quota must be at least 1")
        if queue_bound < 1:
            raise ValueError("queue bound must be at least 1")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight must be positive, got "
                    f"{tenant}={weight}"
                )
        self.quota = quota
        self.queue_bound = queue_bound
        self._weights: Dict[str, float] = dict(weights or {})
        self._registry = registry if registry is not None else REGISTRY
        self._queues: Dict[str, List[_Entry]] = {}
        self._queued: Dict[str, int] = {}
        self._running: Dict[str, int] = {}
        self._virtual: Dict[str, float] = {}
        self._floor = 0.0
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def queued_count(self, tenant: str) -> int:
        return self._queued.get(tenant, 0)

    def running_count(self, tenant: str) -> int:
        return self._running.get(tenant, 0)

    @property
    def depth(self) -> int:
        """Total queued jobs across all tenants."""
        return sum(self._queued.values())

    def has_work(self) -> bool:
        return self.depth > 0

    # ------------------------------------------------------------------
    # Admission + enqueue
    # ------------------------------------------------------------------

    def admit(self, tenant: str) -> None:
        """Admission check alone; raises :class:`AdmissionError`.

        Callers that must do work between the check and the enqueue
        (persisting the job record, preparing its run directory) call
        this first, then :meth:`submit` with ``enforce=False`` — the
        server is single-threaded on its event loop, so the check
        cannot go stale in between.
        """
        in_flight = self.queued_count(tenant) + self.running_count(
            tenant
        )
        if in_flight >= self.quota:
            self._reject(
                tenant,
                f"tenant {tenant!r} is at its quota of "
                f"{self.quota} queued+running jobs",
            )
        if self.depth >= self.queue_bound:
            self._reject(
                tenant,
                f"server queue is full "
                f"({self.queue_bound} jobs queued)",
            )

    def submit(self, job: ServerJob, enforce: bool = True) -> None:
        """Enqueue ``job``; with ``enforce`` apply admission control.

        Recovery requeues pass ``enforce=False``: a job that was
        already admitted before a restart must never bounce off its
        own quota on the way back in.
        """
        tenant = job.tenant
        if enforce:
            self.admit(tenant)
        queue = self._queues.setdefault(tenant, [])
        if not queue and self.running_count(tenant) == 0:
            # Newly active tenant: start at the virtual-time floor so
            # it neither starves (too far ahead) nor claims credit for
            # its idle past (too far behind).
            self._virtual[tenant] = max(
                self._virtual.get(tenant, 0.0), self._floor
            )
        heapq.heappush(queue, (-job.priority, next(self._seq), job))
        self._queued[tenant] = self.queued_count(tenant) + 1
        self._registry.inc("server_jobs_submitted_total", tenant=tenant)
        self._update_gauges(tenant)

    def _reject(self, tenant: str, reason: str) -> None:
        self._registry.inc(
            "server_admission_rejections_total", tenant=tenant
        )
        raise AdmissionError(reason, tenant=tenant)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def next_job(self) -> Optional[ServerJob]:
        """Pop the next job under weighted fair queuing (or ``None``).

        Entries whose job was cancelled while queued are skipped
        lazily (their queued count was already released by
        :meth:`discard`).
        """
        while True:
            tenant = self._pick_tenant()
            if tenant is None:
                return None
            queue = self._queues[tenant]
            _, _, job = heapq.heappop(queue)
            if not queue:
                del self._queues[tenant]
            if job.state is not JobState.QUEUED:
                continue  # cancelled while queued
            self._queued[tenant] = self.queued_count(tenant) - 1
            self._running[tenant] = self.running_count(tenant) + 1
            self._floor = self._virtual.get(tenant, 0.0)
            self._virtual[tenant] = self._floor + 1.0 / self.weight(
                tenant
            )
            self._update_gauges(tenant)
            return job

    def _pick_tenant(self) -> Optional[str]:
        """Active tenant with the least virtual time (name tie-break)."""
        best: Optional[str] = None
        best_vt = 0.0
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            vt = self._virtual.get(tenant, 0.0)
            if best is None or (vt, tenant) < (best_vt, best):
                best, best_vt = tenant, vt
        return best

    def release(self, job: ServerJob) -> None:
        """A dispatched job left its worker slot (any outcome)."""
        tenant = job.tenant
        self._running[tenant] = max(0, self.running_count(tenant) - 1)
        self._update_gauges(tenant)

    def discard(self, job: ServerJob) -> None:
        """A queued job was cancelled; its heap entry is skipped later."""
        tenant = job.tenant
        self._queued[tenant] = max(0, self.queued_count(tenant) - 1)
        self._update_gauges(tenant)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _update_gauges(self, tenant: str) -> None:
        self._registry.set_gauge(
            "server_jobs_queued", self.queued_count(tenant), tenant=tenant
        )
        self._registry.set_gauge(
            "server_jobs_running",
            self.running_count(tenant),
            tenant=tenant,
        )
        self._registry.set_gauge("server_queue_depth", self.depth)
