"""Durable server-side job records and their state machine.

A :class:`ServerJob` is one tenant's submitted campaign: the campaign
spec payload, the tenant identity, a priority, and a small state
machine ``queued -> running -> done/failed/cancelled`` (plus the
recovery edge ``running -> queued`` a restarting server takes for jobs
whose worker died with it).  The :class:`JobStore` persists every
record with the same atomic-write discipline campaign checkpoints use
(temp file + fsync + ``os.replace``), so a ``kill -9`` of the server
leaves either the previous or the new record — never a torn file —
and a restart reloads the full job table from disk.

Layout of a server state directory::

    <state_dir>/
        server.sock         # transport socket (bound while serving)
        events.jsonl        # server-level event stream
        run_summary.json    # state + metrics snapshot (best effort)
        jobs/<job_id>.json  # one durable record per submitted job
        runs/<job_id>/      # the job's campaign run directory
"""

from __future__ import annotations

import enum
import json
import pathlib
import re
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.errors import ServerError
from repro.runtime.checkpoint import atomic_write_json

PathLike = Union[str, pathlib.Path]

#: Schema version of persisted job records; bump on incompatible change.
JOB_VERSION = 1

JOBS_DIRNAME = "jobs"
RUNS_DIRNAME = "runs"

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Legal state-machine edges.  ``running -> queued`` is the recovery
#: edge: a restarting server requeues jobs whose worker died with it.
_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.QUEUED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


def validate_tenant(tenant: str) -> str:
    """Reject tenant names that cannot label files and metrics."""
    if not _TENANT_RE.match(tenant):
        raise ServerError(
            f"invalid tenant name {tenant!r} (want 1-64 chars of "
            f"[A-Za-z0-9_.-], starting alphanumeric)",
            kind="invalid",
        )
    return tenant


@dataclass
class ServerJob:
    """One submitted campaign and its durable lifecycle record."""

    job_id: str
    tenant: str
    priority: int
    #: The campaign spec payload (``CampaignSpec.to_dict()`` shape).
    spec: Dict[str, Any]
    state: JobState = JobState.QUEUED
    submitted_ts: float = 0.0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    error: Optional[str] = None
    worker_pid: Optional[int] = None
    #: Times the job was requeued after a server restart or shutdown.
    resumes: int = 0
    cancel_requested: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": JOB_VERSION,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "spec": dict(self.spec),
            "state": self.state.value,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "error": self.error,
            "worker_pid": self.worker_pid,
            "resumes": self.resumes,
            "cancel_requested": self.cancel_requested,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServerJob":
        values = dict(data)
        version = values.pop("version", JOB_VERSION)
        if version != JOB_VERSION:
            raise ServerError(
                f"unsupported job record version {version!r}",
                kind="invalid",
            )
        values["state"] = JobState(values["state"])
        try:
            return cls(**values)
        except TypeError as exc:
            raise ServerError(
                f"invalid job record: {exc}", kind="invalid"
            ) from exc

    def summary(self) -> Dict[str, Any]:
        """Compact row for ``jobs``/``status`` protocol responses."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state.value,
            "campaign": self.spec.get("name"),
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "error": self.error,
            "resumes": self.resumes,
            "cancel_requested": self.cancel_requested,
        }


class JobStore:
    """The durable job table of one server state directory."""

    def __init__(
        self, state_dir: PathLike, clock: Any = time.time
    ) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.jobs_dir = self.state_dir / JOBS_DIRNAME
        self.runs_dir = self.state_dir / RUNS_DIRNAME
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._jobs: Dict[str, ServerJob] = {}
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise ServerError(
                    f"corrupt job record at {path}: {exc}",
                    kind="invalid",
                ) from exc
            job = ServerJob.from_dict(record)
            self._jobs[job.job_id] = job
        self._next_seq = 1 + max(
            (
                int(match.group(1))
                for match in (
                    re.match(r"^j(\d+)-", job_id) for job_id in self._jobs
                )
                if match is not None
            ),
            default=-1,
        )

    # ------------------------------------------------------------------
    # Creation / persistence
    # ------------------------------------------------------------------

    def create(
        self, spec: Dict[str, Any], tenant: str, priority: int = 0
    ) -> ServerJob:
        """Allocate, persist and return a new queued job."""
        validate_tenant(tenant)
        job_id = f"j{self._next_seq:06d}-{tenant}"
        self._next_seq += 1
        job = ServerJob(
            job_id=job_id,
            tenant=tenant,
            priority=int(priority),
            spec=dict(spec),
            submitted_ts=round(float(self._clock()), 6),
        )
        self._jobs[job_id] = job
        self.save(job)
        return job

    def save(self, job: ServerJob) -> None:
        atomic_write_json(
            self.jobs_dir / f"{job.job_id}.json", job.to_dict()
        )

    def transition(self, job: ServerJob, state: JobState) -> ServerJob:
        """Move ``job`` along a legal state-machine edge and persist it."""
        if state not in _TRANSITIONS[job.state]:
            raise ServerError(
                f"job {job.job_id} cannot go {job.state.value} -> "
                f"{state.value}",
                kind="conflict",
            )
        job.state = state
        now = round(float(self._clock()), 6)
        if state is JobState.RUNNING:
            job.started_ts = now
        elif state in TERMINAL_STATES:
            job.finished_ts = now
        elif state is JobState.QUEUED:  # recovery requeue
            job.started_ts = None
            job.worker_pid = None
            job.resumes += 1
        self.save(job)
        return job

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> ServerJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServerError(
                f"no job {job_id!r}", kind="not_found"
            ) from None

    def jobs(
        self,
        tenant: Optional[str] = None,
        states: Optional[Iterable[JobState]] = None,
    ) -> List[ServerJob]:
        """All known jobs in submission (= job id) order."""
        wanted = frozenset(states) if states is not None else None
        return [
            job
            for job_id, job in sorted(self._jobs.items())
            if (tenant is None or job.tenant == tenant)
            and (wanted is None or job.state in wanted)
        ]

    def counts(self) -> Dict[str, int]:
        """Job totals by state value (all states present, 0 included)."""
        totals = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            totals[job.state.value] += 1
        return totals

    def run_dir(self, job_id: str) -> pathlib.Path:
        """The campaign run directory of one job (not created here)."""
        return self.runs_dir / job_id
