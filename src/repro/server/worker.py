"""Worker subprocess entry point: run one job's campaign to completion.

The server never executes campaigns on its own event loop — each
dispatched job runs ``python -m repro.server.worker <run_dir>`` in a
subprocess, so a heavy synthesis cannot stall scheduling or other
tenants.  The run directory already carries ``spec.json`` (written at
submit time), so the worker is nothing but
:func:`repro.runtime.runner.resume_campaign` plus process hygiene:

* **SIGTERM is a graceful stop** — the campaign runner converts it
  into the interrupt path (checkpoint already durable, summary
  exported, ``campaign_interrupted`` event emitted) and the worker
  exits with :data:`EXIT_INTERRUPTED`.
* **Orphan watchdog** — when ``--parent-pid`` is given, a daemon
  thread polls the parent: if the server is ``kill -9``-ed, the worker
  SIGTERMs itself instead of racing a restarted server for the same
  run directory.

Exit codes: 0 = all campaign jobs completed, :data:`EXIT_FAILED_JOBS`
= campaign finished but some jobs failed, :data:`EXIT_ERROR` = the
campaign itself errored, :data:`EXIT_INTERRUPTED` = stopped by
SIGTERM/Ctrl-C (resumable from checkpoints).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
from typing import Optional, Sequence

EXIT_OK = 0
EXIT_ERROR = 2
EXIT_FAILED_JOBS = 3
EXIT_INTERRUPTED = 130


def start_orphan_watchdog(
    parent_pid: int, poll_interval: float = 0.5
) -> threading.Thread:
    """SIGTERM ourselves as soon as ``parent_pid`` stops being our parent.

    After a hard kill of the server, ``getppid()`` flips to the reaper
    (pid 1 or a subreaper); self-delivering SIGTERM then takes the
    same graceful-stop path a server-initiated cancel takes.
    """

    def watch() -> None:
        while True:
            if os.getppid() != parent_pid:
                os.kill(os.getpid(), signal.SIGTERM)
                return
            time.sleep(poll_interval)

    thread = threading.Thread(
        target=watch, name="orphan-watchdog", daemon=True
    )
    thread.start()
    return thread


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-server-worker",
        description="run one server job's campaign (internal entry point)",
    )
    parser.add_argument("run_dir", help="campaign run directory")
    parser.add_argument(
        "--parent-pid",
        type=int,
        default=None,
        help="SIGTERM self when this process stops being our parent",
    )
    args = parser.parse_args(argv)
    if args.parent_pid is not None:
        start_orphan_watchdog(args.parent_pid)

    from repro.errors import ReproError
    from repro.runtime.runner import resume_campaign

    try:
        outcome = resume_campaign(args.run_dir)
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"worker: campaign error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_FAILED_JOBS if outcome.failures else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
