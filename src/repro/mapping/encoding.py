"""The multi-mode mapping string — the GA genome.

A mapping candidate assigns every task of every mode to one processing
element capable of executing its type.  Following the paper (Fig. 2, the
"Mapping String" column), all per-mode assignments are concatenated into
a single flat string so that standard genetic operators (two-point
crossover, gene mutation) apply directly.  Gene order is fixed by the
problem's gene space: modes in OMSM order, tasks in task-graph insertion
order.
"""

from __future__ import annotations

import random
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import MappingError
from repro.problem import Problem


class MappingString:
    """An immutable genome: one PE name per (mode, task) gene.

    Instances compare and hash by gene content, so populations can be
    deduplicated with sets/dicts.

    Genomes produced by the genetic operators additionally carry a
    *dirty-mode set* (:attr:`dirty_modes`): the modes whose gene slice
    differs from the genome the operator derived them from.  The set is
    metadata — it never enters equality or hashing — and feeds the
    incremental evaluation pipeline's observability (clean modes are
    recognised by cache key regardless, so a stale or missing set can
    never corrupt results).
    """

    __slots__ = ("_problem", "_genes", "_hash", "_dirty_modes")

    def __init__(self, problem: Problem, genes: Sequence[str]) -> None:
        layout = _layout(problem)
        if len(genes) != len(layout):
            raise MappingError(
                f"genome length {len(genes)} does not match problem "
                f"({len(layout)} genes)"
            )
        for gene, (mode, task, candidates) in zip(genes, layout):
            if gene not in candidates:
                raise MappingError(
                    f"gene for task {task!r} in mode {mode!r} assigns "
                    f"{gene!r}, not among candidates {list(candidates)}"
                )
        self._problem = problem
        self._genes: Tuple[str, ...] = tuple(genes)
        self._hash = hash(self._genes)
        self._dirty_modes: Optional[FrozenSet[str]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def random(cls, problem: Problem, rng: random.Random) -> "MappingString":
        """A uniformly random valid genome."""
        genes = [
            rng.choice(candidates) for _, _, candidates in _layout(problem)
        ]
        return cls(problem, genes)

    @classmethod
    def random_software_biased(
        cls, problem: Problem, rng: random.Random, bias: float = 0.8
    ) -> "MappingString":
        """A random genome preferring software implementations.

        Each gene picks among the software candidates with probability
        ``bias`` (falling back to a uniform pick when the type has no
        software implementation).  Used to seed the GA population with
        area-feasible footholds — on large problems a uniform pick maps
        roughly half the tasks into hardware, which almost surely
        violates every area constraint.
        """
        software = {
            pe.name for pe in problem.architecture.software_pes()
        }
        genes = []
        for _, _, candidates in _layout(problem):
            sw_candidates = [c for c in candidates if c in software]
            if sw_candidates and rng.random() < bias:
                genes.append(rng.choice(sw_candidates))
            else:
                genes.append(rng.choice(candidates))
        return cls(problem, genes)

    @classmethod
    def from_mapping(
        cls, problem: Problem, mapping: Mapping[str, Mapping[str, str]]
    ) -> "MappingString":
        """Build a genome from ``{mode: {task: pe}}`` dictionaries."""
        genes: List[str] = []
        for mode, task, _ in _layout(problem):
            try:
                genes.append(mapping[mode][task])
            except KeyError:
                raise MappingError(
                    f"mapping misses an assignment for task {task!r} in "
                    f"mode {mode!r}"
                ) from None
        return cls(problem, genes)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def problem(self) -> Problem:
        return self._problem

    @property
    def genes(self) -> Tuple[str, ...]:
        return self._genes

    def __len__(self) -> int:
        return len(self._genes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._genes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingString):
            return NotImplemented
        return self._genes == other._genes

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MappingString({list(self._genes)!r})"

    @property
    def dirty_modes(self) -> Optional[FrozenSet[str]]:
        """Modes whose genes may differ from this genome's parent.

        ``None`` means "unknown provenance" (constructed directly, not
        via a genetic operator) and is treated as all-modes-dirty by
        consumers.  An empty set means the operator produced an exact
        copy.
        """
        return self._dirty_modes

    def _with_dirty(
        self, dirty: FrozenSet[str]
    ) -> "MappingString":
        """Annotate this genome's dirty-mode set (internal, post-init)."""
        self._dirty_modes = dirty
        return self

    def mode_mapping(self, mode_name: str) -> Dict[str, str]:
        """Task → PE assignment for one mode (``M_τ^O``)."""
        start, genes = self._mode_slice(mode_name)
        return {
            task: self._genes[start + offset]
            for offset, (task, _) in enumerate(genes)
        }

    def mode_genes(self, mode_name: str) -> Tuple[str, ...]:
        """The contiguous gene slice of one mode, as a hashable tuple.

        This is the mode's identity for the per-mode result cache: two
        genomes with equal ``mode_genes`` decode to the same mode
        mapping, mobilities and core demand.
        """
        for name, start, end in mode_bounds(self._problem):
            if name == mode_name:
                return self._genes[start:end]
        raise MappingError(f"unknown mode {mode_name!r}")

    def diff_modes(self, other: "MappingString") -> FrozenSet[str]:
        """Modes whose gene slices differ between two genomes (exact)."""
        if self._problem is not other._problem:
            raise MappingError(
                "cannot diff genomes from different problems"
            )
        if self._genes == other._genes:
            return frozenset()
        return frozenset(
            name
            for name, start, end in mode_bounds(self._problem)
            if self._genes[start:end] != other._genes[start:end]
        )

    def full_mapping(self) -> Dict[str, Dict[str, str]]:
        """``{mode: {task: pe}}`` for all modes."""
        return {
            mode.name: self.mode_mapping(mode.name)
            for mode in self._problem.omsm.modes
        }

    def pe_of(self, mode_name: str, task_name: str) -> str:
        """The PE executing ``task_name`` in ``mode_name``."""
        start, genes = self._mode_slice(mode_name)
        for offset, (task, _) in enumerate(genes):
            if task == task_name:
                return self._genes[start + offset]
        raise MappingError(
            f"no task {task_name!r} in mode {mode_name!r}"
        )

    def _mode_slice(
        self, mode_name: str
    ) -> Tuple[int, Tuple[Tuple[str, Tuple[str, ...]], ...]]:
        start = 0
        for mode in self._problem.omsm.modes:
            genes = self._problem.gene_space(mode.name)
            if mode.name == mode_name:
                return start, genes
            start += len(genes)
        raise MappingError(f"unknown mode {mode_name!r}")

    # ------------------------------------------------------------------
    # Genetic operators
    # ------------------------------------------------------------------

    def with_gene(self, index: int, pe: str) -> "MappingString":
        """A copy with gene ``index`` replaced (validated)."""
        if not 0 <= index < len(self._genes):
            raise MappingError(f"gene index {index} out of range")
        genes = list(self._genes)
        genes[index] = pe
        child = MappingString(self._problem, genes)
        return child._with_dirty(
            _modes_of_indices(self._problem, (index,))
            if pe != self._genes[index]
            else frozenset()
        )

    def with_genes(
        self, replacements: Mapping[int, str]
    ) -> "MappingString":
        """A copy with several genes replaced at once."""
        genes = list(self._genes)
        changed: List[int] = []
        for index, pe in replacements.items():
            if not 0 <= index < len(genes):
                raise MappingError(f"gene index {index} out of range")
            if genes[index] != pe:
                changed.append(index)
            genes[index] = pe
        child = MappingString(self._problem, genes)
        return child._with_dirty(
            _modes_of_indices(self._problem, changed)
        )

    def mutate(
        self, rng: random.Random, per_gene_rate: float
    ) -> "MappingString":
        """Uniform gene mutation: each gene re-drawn with probability."""
        layout = _layout(self._problem)
        genes = list(self._genes)
        changed: List[int] = []
        for index, (_, _, candidates) in enumerate(layout):
            if len(candidates) > 1 and rng.random() < per_gene_rate:
                alternatives = [c for c in candidates if c != genes[index]]
                genes[index] = rng.choice(alternatives)
                changed.append(index)
        if not changed:
            return self
        child = MappingString(self._problem, genes)
        return child._with_dirty(
            _modes_of_indices(self._problem, changed)
        )

    def crossover_two_point(
        self, other: "MappingString", rng: random.Random
    ) -> Tuple["MappingString", "MappingString"]:
        """Two-point crossover (paper Fig. 4, line 17).

        Because both parents are valid genomes over the same gene space,
        exchanging any gene range yields valid offspring.
        """
        if self._problem is not other._problem:
            raise MappingError(
                "cannot cross genomes from different problems"
            )
        length = len(self._genes)
        if length < 2:
            return self, other
        first = rng.randrange(0, length)
        second = rng.randrange(0, length)
        low, high = min(first, second), max(first, second)
        if low == high:
            high = min(high + 1, length)
        child_a = list(self._genes)
        child_b = list(other._genes)
        child_a[low:high], child_b[low:high] = (
            child_b[low:high],
            child_a[low:high],
        )
        first_child = MappingString(self._problem, child_a)
        second_child = MappingString(self._problem, child_b)
        # Each child inherits everything outside [low, high) from its
        # base parent, so its dirty modes (relative to that parent) are
        # exactly the modes whose slice the exchange actually changed.
        return (
            first_child._with_dirty(first_child.diff_modes(self)),
            second_child._with_dirty(second_child.diff_modes(other)),
        )

    # ------------------------------------------------------------------
    # Gene index helpers (used by the improvement mutations)
    # ------------------------------------------------------------------

    def gene_index(self, mode_name: str, task_name: str) -> int:
        """Flat index of the gene for (mode, task)."""
        start, genes = self._mode_slice(mode_name)
        for offset, (task, _) in enumerate(genes):
            if task == task_name:
                return start + offset
        raise MappingError(
            f"no task {task_name!r} in mode {mode_name!r}"
        )

    def candidates_at(self, index: int) -> Tuple[str, ...]:
        """Candidate PEs of the gene at a flat index."""
        layout = _layout(self._problem)
        if not 0 <= index < len(layout):
            raise MappingError(f"gene index {index} out of range")
        return layout[index][2]


def _layout(problem: Problem) -> Tuple[Tuple[str, str, Tuple[str, ...]], ...]:
    """Flat ``(mode, task, candidates)`` tuples in genome order (cached)."""
    cached = getattr(problem, "_genome_layout", None)
    if cached is None:
        entries: List[Tuple[str, str, Tuple[str, ...]]] = []
        for mode in problem.omsm.modes:
            for task, candidates in problem.gene_space(mode.name):
                entries.append((mode.name, task, candidates))
        cached = tuple(entries)
        problem._genome_layout = cached  # type: ignore[attr-defined]
    return cached


def mode_bounds(problem: Problem) -> Tuple[Tuple[str, int, int], ...]:
    """``(mode, start, end)`` genome-slice bounds per mode (cached)."""
    cached = getattr(problem, "_mode_bounds", None)
    if cached is None:
        entries: List[Tuple[str, int, int]] = []
        start = 0
        for mode in problem.omsm.modes:
            length = len(problem.gene_space(mode.name))
            entries.append((mode.name, start, start + length))
            start += length
        cached = tuple(entries)
        problem._mode_bounds = cached  # type: ignore[attr-defined]
    return cached


def _modes_of_indices(
    problem: Problem, indices: Sequence[int]
) -> FrozenSet[str]:
    """The modes owning the given flat gene indices."""
    if not indices:
        return frozenset()
    bounds = mode_bounds(problem)
    dirty = set()
    for index in indices:
        for name, start, end in bounds:
            if start <= index < end:
                dirty.add(name)
                break
    return frozenset(dirty)
