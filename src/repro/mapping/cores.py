"""Hardware core allocation (paper Fig. 4, lines 4–6).

Every task type mapped to a hardware component needs at least one core
of that type on the component.  Beyond the minimum, the allocator adds
extra cores for *parallel tasks with low mobility* — same-type tasks
that are independent in the task graph and whose scheduling freedom is
smaller than their execution time, so serialising them on one core would
push them past their ALAP start.  Extra cores are only added while the
component's area permits.

Area accounting distinguishes the two hardware kinds:

* **ASIC** — the core set is static; the per-type core count must cover
  the worst mode, and the total area of this union configuration is
  charged against the component.
* **FPGA** — the component is reconfigured at mode changes, so each
  mode's configuration is charged separately (the *largest* mode's area
  counts), and swapping configurations costs reconfiguration time that
  is checked against the OMSM transition limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.architecture.processing_element import PEKind, ProcessingElement
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.scheduling.mobility import MobilityInfo, compute_mobilities

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.decode_cache import DecodeContext


@dataclass
class CoreAllocation:
    """Result of hardware core allocation for one mapping candidate.

    Attributes
    ----------
    counts:
        ``{pe: {mode: {task_type: cores available}}}`` — what the
        scheduler may use.  For ASICs the counts are identical across
        modes (static configuration); for FPGAs they are per-mode.
    area_used:
        ``{pe: cells}`` — ASIC: union-configuration area; FPGA: area of
        the largest per-mode configuration.
    """

    counts: Dict[str, Dict[str, Dict[str, int]]]
    area_used: Dict[str, float]
    _problem: Problem

    def available_cores(
        self, pe_name: str, mode_name: str, task_type: str
    ) -> int:
        """Cores of ``task_type`` usable on ``pe_name`` during a mode."""
        return (
            self.counts.get(pe_name, {}).get(mode_name, {}).get(task_type, 0)
        )

    def area_violation(self, pe_name: str) -> float:
        """Cells by which the component's area constraint is exceeded."""
        pe = self._problem.architecture.pe(pe_name)
        if not pe.is_hardware:
            return 0.0
        return max(0.0, self.area_used.get(pe_name, 0.0) - pe.area)

    def area_violations(self) -> Dict[str, float]:
        """All violating PEs with their overshoot in cells."""
        result: Dict[str, float] = {}
        for pe in self._problem.architecture.hardware_pes():
            overshoot = self.area_violation(pe.name)
            if overshoot > 0:
                result[pe.name] = overshoot
        return result

    def is_area_feasible(self) -> bool:
        return not self.area_violations()

    # ------------------------------------------------------------------
    # Mode transitions (FPGA reconfiguration)
    # ------------------------------------------------------------------

    def transition_time(self, src_mode: str, dst_mode: str) -> float:
        """Reconfiguration time of the mode change ``src -> dst``.

        FPGAs load the cores present in the destination configuration
        but absent (or under-provisioned) in the source configuration;
        configuration proceeds per cell at the component's
        ``reconfig_time_per_cell`` rate.  Multiple FPGAs reconfigure in
        parallel, so the transition takes the slowest component's time.
        """
        slowest = 0.0
        for pe in self._problem.architecture.hardware_pes():
            if pe.kind is not PEKind.FPGA:
                continue
            src_counts = self.counts.get(pe.name, {}).get(src_mode, {})
            dst_counts = self.counts.get(pe.name, {}).get(dst_mode, {})
            load_area = 0.0
            for task_type, dst_count in dst_counts.items():
                missing = dst_count - src_counts.get(task_type, 0)
                if missing > 0:
                    entry = self._problem.technology.implementation(
                        task_type, pe.name
                    )
                    load_area += missing * entry.area
            slowest = max(
                slowest, load_area * pe.reconfig_time_per_cell
            )
        return slowest

    def transition_times(self) -> Dict[Tuple[str, str], float]:
        """Reconfiguration time for every OMSM transition."""
        return {
            transition.key: self.transition_time(
                transition.src, transition.dst
            )
            for transition in self._problem.omsm.transitions
        }

    def transition_violations(self) -> Dict[Tuple[str, str], float]:
        """Transitions whose reconfiguration exceeds ``t_T^max``.

        Maps the transition key to the ratio ``t_T / t_T^max`` (> 1).
        """
        violations: Dict[Tuple[str, str], float] = {}
        for transition in self._problem.omsm.transitions:
            needed = self.transition_time(transition.src, transition.dst)
            if needed > transition.max_time:
                violations[transition.key] = needed / transition.max_time
        return violations


def allocate_cores(
    problem: Problem,
    mapping: MappingString,
    mobilities: Optional[Mapping[str, Mapping[str, MobilityInfo]]] = None,
    context: Optional["DecodeContext"] = None,
    mode_mappings: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> CoreAllocation:
    """Derive the hardware core sets implied by a mapping string.

    Parameters
    ----------
    problem:
        The co-synthesis instance.
    mapping:
        The multi-mode mapping string to realise.
    mobilities:
        Optional per-mode mobility tables (``{mode: {task: info}}``).
        Computed on demand when omitted.
    context:
        Optional decode context; supplies precomputed task types and
        same-type independence, avoiding per-candidate graph queries.
    mode_mappings:
        Optional predecoded ``{mode: {task: pe}}`` dictionaries (the
        evaluator already built them); avoids ``O(genes)`` ``pe_of``
        scans per task.
    """
    architecture = problem.architecture
    technology = problem.technology
    if mobilities is None:
        mobilities = {
            mode.name: compute_mobilities(
                mode,
                lambda task, _m=mode: technology.implementation(
                    _m.task_graph.task(task).task_type,
                    mapping.pe_of(_m.name, task),
                ).exec_time,
            )
            for mode in problem.omsm.modes
        }

    counts: Dict[str, Dict[str, Dict[str, int]]] = {}
    area_used: Dict[str, float] = {}
    mode_names = problem.omsm.mode_names

    for pe in architecture.hardware_pes():
        base, desired = _per_mode_demand(
            problem, mapping, mobilities, pe, context, mode_mappings
        )
        if pe.kind is PEKind.ASIC:
            pe_counts, used = _fit_asic(problem, pe, base, desired)
        else:
            pe_counts, used = _fit_fpga(problem, pe, base, desired)
        counts[pe.name] = {
            mode_name: pe_counts.get(mode_name, {})
            for mode_name in mode_names
        }
        area_used[pe.name] = used

    return CoreAllocation(counts=counts, area_used=area_used, _problem=problem)


def _per_mode_demand(
    problem: Problem,
    mapping: MappingString,
    mobilities: Mapping[str, Mapping[str, MobilityInfo]],
    pe: ProcessingElement,
    context: Optional["DecodeContext"] = None,
    mode_mappings: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> Tuple[Dict[str, Dict[str, int]], Dict[str, Dict[str, int]]]:
    """Minimum and desired per-mode core counts for one hardware PE.

    The minimum is one core per task type with at least one task mapped
    here.  The desired count additionally provisions cores for parallel
    low-mobility tasks: within a (mode, type) group sorted by mobility,
    the k-th member (k = 1, 2, ...) deserves its own core when it is
    independent of some other group member and its mobility is below
    ``k`` times the type's execution time — i.e. when queueing behind
    the k earlier executions on a single core would push it past its
    ALAP start.
    """
    base: Dict[str, Dict[str, int]] = {}
    desired: Dict[str, Dict[str, int]] = {}
    for mode in problem.omsm.modes:
        mode_data = context.modes[mode.name] if context is not None else None
        pe_by_task = (
            mode_mappings[mode.name] if mode_mappings is not None else None
        )
        base_counts, desired_counts = mode_pe_demand(
            problem,
            mode,
            pe,
            mobilities[mode.name],
            mapping=mapping,
            mode_data=mode_data,
            pe_by_task=pe_by_task,
        )
        base[mode.name] = base_counts
        desired[mode.name] = desired_counts
    return base, desired


def mode_pe_demand(
    problem: Problem,
    mode,
    pe: ProcessingElement,
    mode_mobilities: Mapping[str, MobilityInfo],
    mapping: Optional[MappingString] = None,
    mode_data=None,
    pe_by_task: Optional[Mapping[str, str]] = None,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Minimum and desired core counts of one (mode, hardware PE) pair.

    The single-mode kernel of :func:`_per_mode_demand`, shared with the
    incremental evaluation pipeline: the result depends only on the
    mode's gene slice (through ``pe_by_task``/``mapping``) and its
    mobilities, so it can be memoised per mode.  Either ``mode_data`` +
    ``pe_by_task`` (decode-cache fast path) or ``mapping`` (legacy
    path) must be provided.
    """
    graph = mode.task_graph
    groups: Dict[str, List[str]] = {}
    if mode_data is not None and pe_by_task is not None:
        task_types = mode_data.task_types
        for name in mode_data.task_names:
            if pe_by_task[name] == pe.name:
                groups.setdefault(task_types[name], []).append(name)
    else:
        assert mapping is not None
        for task in graph:
            if mapping.pe_of(mode.name, task.name) == pe.name:
                groups.setdefault(task.task_type, []).append(task.name)
    base_counts: Dict[str, int] = {}
    desired_counts: Dict[str, int] = {}
    for task_type, members in groups.items():
        base_counts[task_type] = 1
        extra = 0
        if len(members) > 1:
            entry = problem.technology.implementation(task_type, pe.name)
            ordered = sorted(
                members,
                key=lambda n: mode_mobilities[n].mobility,
            )
            for position, name in enumerate(ordered[1:], start=1):
                if mode_data is not None:
                    independent = mode_data.independent_same_type.get(
                        name, frozenset()
                    )
                    parallel = any(
                        other in independent
                        for other in members
                        if other != name
                    )
                else:
                    parallel = any(
                        graph.independent(name, other)
                        for other in members
                        if other != name
                    )
                urgent = (
                    mode_mobilities[name].mobility
                    < position * entry.exec_time
                )
                if parallel and urgent:
                    extra += 1
        desired_counts[task_type] = 1 + min(extra, len(members) - 1)
    return base_counts, desired_counts


def _core_area(problem: Problem, pe_name: str, task_type: str) -> float:
    return problem.technology.implementation(task_type, pe_name).area


def _fit_asic(
    problem: Problem,
    pe: ProcessingElement,
    base: Dict[str, Dict[str, int]],
    desired: Dict[str, Dict[str, int]],
) -> Tuple[Dict[str, Dict[str, int]], float]:
    """Static configuration: per-type max over modes, shared by all modes."""
    base_union: Dict[str, int] = {}
    desired_union: Dict[str, int] = {}
    for mode_counts in base.values():
        for task_type, count in mode_counts.items():
            base_union[task_type] = max(
                base_union.get(task_type, 0), count
            )
    for mode_counts in desired.values():
        for task_type, count in mode_counts.items():
            desired_union[task_type] = max(
                desired_union.get(task_type, 0), count
            )
    final = dict(base_union)
    used = sum(
        count * _core_area(problem, pe.name, task_type)
        for task_type, count in final.items()
    )
    # Add desired extra cores greedily (smallest area first) while the
    # component still has room.
    extras: List[Tuple[float, str]] = []
    for task_type, want in sorted(desired_union.items()):
        area = _core_area(problem, pe.name, task_type)
        for _ in range(want - final.get(task_type, 0)):
            extras.append((area, task_type))
    extras.sort()
    for area, task_type in extras:
        if used + area <= pe.area:
            final[task_type] = final.get(task_type, 0) + 1
            used += area
    per_mode = {mode_name: dict(final) for mode_name in base}
    return per_mode, used


def _fit_fpga(
    problem: Problem,
    pe: ProcessingElement,
    base: Dict[str, Dict[str, int]],
    desired: Dict[str, Dict[str, int]],
) -> Tuple[Dict[str, Dict[str, int]], float]:
    """Per-mode configurations; the largest mode's area is charged."""
    per_mode: Dict[str, Dict[str, int]] = {}
    worst_area = 0.0
    for mode_name, base_counts in base.items():
        final = dict(base_counts)
        used = sum(
            count * _core_area(problem, pe.name, task_type)
            for task_type, count in final.items()
        )
        extras: List[Tuple[float, str]] = []
        for task_type, want in sorted(desired[mode_name].items()):
            area = _core_area(problem, pe.name, task_type)
            for _ in range(want - final.get(task_type, 0)):
                extras.append((area, task_type))
        extras.sort()
        for area, task_type in extras:
            if used + area <= pe.area:
                final[task_type] = final.get(task_type, 0) + 1
                used += area
        per_mode[mode_name] = final
        worst_area = max(worst_area, used)
    return per_mode, worst_area
