"""Fully evaluated implementation candidates.

An implementation (paper Section 2.2) is the tuple of functions
``(M_τ^O, M_γ^O, S_ε^O, V_τ^O)`` for every mode, together with the
derived quality metrics: probability-weighted average power (Equation 1),
per-mode power breakdown, and the three feasibility dimensions (timing,
area, mode-transition time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.mapping.cores import CoreAllocation
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.scheduling.schedule import ModeSchedule


@dataclass(frozen=True)
class ImplementationMetrics:
    """Quality figures of one implementation candidate.

    All powers are in watts, times in seconds.  ``average_power`` is the
    paper's Equation (1) under the *true* mode execution probabilities,
    regardless of which probabilities guided the optimisation.
    """

    average_power: float
    dynamic_power: Dict[str, float]
    static_power: Dict[str, float]
    timing_violation: Dict[str, Dict[str, float]]
    area_violation: Dict[str, float]
    transition_violation: Dict[Tuple[str, str], float]
    fitness: float

    @property
    def is_timing_feasible(self) -> bool:
        return not self.timing_violation

    @property
    def is_area_feasible(self) -> bool:
        return not self.area_violation

    @property
    def is_transition_feasible(self) -> bool:
        return not self.transition_violation

    @property
    def is_feasible(self) -> bool:
        """True when no constraint of Section 3 is violated."""
        return (
            self.is_timing_feasible
            and self.is_area_feasible
            and self.is_transition_feasible
        )

    def mode_power(self, mode_name: str) -> float:
        """Dynamic + static power of one mode (unweighted)."""
        return self.dynamic_power[mode_name] + self.static_power[mode_name]


@dataclass(frozen=True)
class Implementation:
    """A decoded, scheduled and voltage-scaled mapping candidate."""

    problem: Problem
    mapping: MappingString
    cores: CoreAllocation
    schedules: Dict[str, ModeSchedule]
    metrics: ImplementationMetrics

    def schedule(self, mode_name: str) -> ModeSchedule:
        return self.schedules[mode_name]

    def active_components(self, mode_name: str) -> Tuple[str, ...]:
        """Components powered during a mode (PEs then links, sorted)."""
        schedule = self.schedules[mode_name]
        return schedule.active_pes() + schedule.active_links()

    def shut_down_components(self, mode_name: str) -> Tuple[str, ...]:
        """Components that can be switched off during a mode."""
        active = set(self.active_components(mode_name))
        names = list(self.problem.architecture.pe_names) + list(
            self.problem.architecture.link_names
        )
        return tuple(n for n in names if n not in active)

    def summary(self) -> str:
        """A short human-readable report of the candidate."""
        lines = [
            f"implementation of {self.problem.name!r}:",
            f"  average power: {self.metrics.average_power * 1e3:.4f} mW",
            f"  feasible: {self.metrics.is_feasible}",
        ]
        for mode in self.problem.omsm.modes:
            schedule = self.schedules[mode.name]
            shut = ", ".join(self.shut_down_components(mode.name)) or "none"
            lines.append(
                f"  mode {mode.name} (Ψ={mode.probability:.2f}): "
                f"P_dyn={self.metrics.dynamic_power[mode.name] * 1e3:.4f} mW, "
                f"P_stat={self.metrics.static_power[mode.name] * 1e3:.4f} mW, "
                f"makespan={schedule.makespan * 1e3:.3f} ms, "
                f"off: {shut}"
            )
        return "\n".join(lines)
