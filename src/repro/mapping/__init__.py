"""Mapping: genome encoding, core allocation and implementation results.

The outer synthesis loop searches over *multi-mode mapping strings*
(paper Fig. 2b/2c): one gene per (mode, task) pair selecting the
processing element that executes the task in that mode.  Decoding a
string yields per-mode task mappings, from which the core allocator
derives the hardware core sets (with mobility-guided duplication), area
usage and FPGA reconfiguration times.
"""

from repro.mapping.encoding import MappingString
from repro.mapping.cores import CoreAllocation, allocate_cores
from repro.mapping.implementation import Implementation, ImplementationMetrics

__all__ = [
    "CoreAllocation",
    "Implementation",
    "ImplementationMetrics",
    "MappingString",
    "allocate_cores",
]
