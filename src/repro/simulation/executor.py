"""Replaying an implementation over a mode trace.

For every visit the executor accounts:

* one iteration energy (tasks at their scaled voltages plus bus
  transfers) per *started* task-graph period — periods are started
  back-to-back for the whole dwell, the common operating model for
  periodic firm-deadline systems;
* static power of the components left powered during the mode, for the
  full dwell;
* at each mode change, the FPGA reconfiguration time (during which the
  destination mode cannot start iterating) and, optionally, a
  configurable reconfiguration energy per cell.

The resulting average power converges to the analytical Equation (1)
as the horizon grows, up to the (real) mode-change overheads that the
static estimate deliberately ignores — making the simulator both a
validation harness for the power model and a tool to quantify when
transition overheads start to matter.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import SpecificationError
from repro.mapping.implementation import Implementation
from repro.power.shutdown import mode_static_power
from repro.simulation.markov import ModeProcess
from repro.simulation.trace import ModeVisit, generate_trace


@dataclass(frozen=True)
class SimulationReport:
    """Aggregated outcome of one trace-driven simulation."""

    horizon: float
    total_energy: float
    dynamic_energy: float
    static_energy: float
    reconfiguration_energy: float
    reconfiguration_time: float
    iterations: Dict[str, int]
    mode_time: Dict[str, float]
    transitions: int
    analytical_power: float

    @property
    def average_power(self) -> float:
        """Simulated average power over the horizon, in watts."""
        return self.total_energy / self.horizon

    @property
    def relative_error(self) -> float:
        """``(simulated − analytical) / analytical`` average power."""
        if self.analytical_power == 0:
            return 0.0
        return (
            self.average_power - self.analytical_power
        ) / self.analytical_power

    def mode_fraction(self, mode_name: str) -> float:
        return self.mode_time.get(mode_name, 0.0) / self.horizon

    def summary(self) -> str:
        lines = [
            f"simulated {self.horizon:.3f} s, "
            f"{self.transitions} mode changes",
            f"  simulated power:  {self.average_power * 1e3:.4f} mW",
            f"  Equation (1):     {self.analytical_power * 1e3:.4f} mW "
            f"(error {self.relative_error * 100:+.2f} %)",
            f"  dynamic energy:   {self.dynamic_energy * 1e3:.4f} mJ",
            f"  static energy:    {self.static_energy * 1e3:.4f} mJ",
            f"  reconfiguration:  {self.reconfiguration_time * 1e3:.2f}"
            f" ms, {self.reconfiguration_energy * 1e3:.4f} mJ",
        ]
        return "\n".join(lines)


def simulate(
    implementation: Implementation,
    trace: Optional[Sequence[ModeVisit]] = None,
    horizon: float = 10.0,
    seed: int = 0,
    process: Optional[ModeProcess] = None,
    reconfig_energy_per_cell: float = 0.0,
) -> SimulationReport:
    """Replay an implementation over a (possibly generated) mode trace.

    Parameters
    ----------
    implementation:
        A fully evaluated implementation (mapping + schedules).
    trace:
        Explicit mode visits.  When ``None``, a trace is generated over
        ``horizon`` seconds from ``process`` (or a default
        :class:`ModeProcess`) with the given ``seed``.
    horizon:
        Trace length in seconds (ignored when ``trace`` is given).
    reconfig_energy_per_cell:
        Energy in joules charged per reconfigured FPGA cell at mode
        changes (0 = time-only reconfiguration).
    """
    problem = implementation.problem
    if trace is None:
        if process is None:
            process = ModeProcess(problem.omsm)
        trace = generate_trace(
            process, horizon, random.Random(seed)
        )
    if not trace:
        raise SpecificationError("cannot simulate an empty trace")
    actual_horizon = trace[-1].end - trace[0].start

    iteration_energy: Dict[str, float] = {}
    static_power: Dict[str, float] = {}
    for mode in problem.omsm.modes:
        schedule = implementation.schedules[mode.name]
        iteration_energy[mode.name] = schedule.total_dynamic_energy()
        static_power[mode.name] = mode_static_power(problem, schedule)

    dynamic_energy = 0.0
    static_energy = 0.0
    reconfiguration_energy = 0.0
    reconfiguration_time = 0.0
    iterations: Dict[str, int] = {
        mode.name: 0 for mode in problem.omsm.modes
    }
    mode_time: Dict[str, float] = {
        mode.name: 0.0 for mode in problem.omsm.modes
    }

    previous: Optional[str] = None
    for visit in trace:
        if visit.mode not in iterations:
            raise SpecificationError(
                f"trace visits unknown mode {visit.mode!r}"
            )
        usable = visit.duration
        if previous is not None and previous != visit.mode:
            overhead = implementation.cores.transition_time(
                previous, visit.mode
            )
            overhead = min(overhead, usable)
            reconfiguration_time += overhead
            usable -= overhead
            if reconfig_energy_per_cell > 0:
                reconfiguration_energy += (
                    _reconfigured_cells(
                        implementation, previous, visit.mode
                    )
                    * reconfig_energy_per_cell
                )
        period = problem.omsm.mode(visit.mode).period
        started = int(math.ceil(usable / period - 1e-12)) if usable > 0 else 0
        iterations[visit.mode] += started
        dynamic_energy += started * iteration_energy[visit.mode]
        static_energy += visit.duration * static_power[visit.mode]
        mode_time[visit.mode] += visit.duration
        previous = visit.mode

    from repro.power.energy_model import average_power

    analytical = average_power(problem, implementation.schedules)
    total = dynamic_energy + static_energy + reconfiguration_energy
    return SimulationReport(
        horizon=actual_horizon,
        total_energy=total,
        dynamic_energy=dynamic_energy,
        static_energy=static_energy,
        reconfiguration_energy=reconfiguration_energy,
        reconfiguration_time=reconfiguration_time,
        iterations=iterations,
        mode_time=mode_time,
        transitions=sum(
            1
            for left, right in zip(trace, trace[1:])
            if left.mode != right.mode
        ),
        analytical_power=analytical,
    )


def _reconfigured_cells(
    implementation: Implementation, src_mode: str, dst_mode: str
) -> float:
    """Total FPGA cells loaded during one mode change."""
    problem = implementation.problem
    cells = 0.0
    for pe in problem.architecture.hardware_pes():
        if pe.reconfig_time_per_cell <= 0:
            continue
        counts = implementation.cores.counts.get(pe.name, {})
        src_counts = counts.get(src_mode, {})
        dst_counts = counts.get(dst_mode, {})
        for task_type, dst_count in dst_counts.items():
            missing = dst_count - src_counts.get(task_type, 0)
            if missing > 0:
                entry = problem.technology.implementation(
                    task_type, pe.name
                )
                cells += missing * entry.area
    return cells
