"""A semi-Markov mode process consistent with the OMSM.

The OMSM specifies *which* mode changes are possible and *what fraction
of time* the system spends in each mode (Ψ), but not the dynamics.
:class:`ModeProcess` fills the gap with the least additional structure:

* each visit to mode ``O`` dwells for an exponentially distributed time
  with a configurable mean ``d_O``;
* successive modes follow a Markov jump chain over the OMSM's
  transition graph (self-loops allowed — a self-loop simply extends the
  stay), built by Metropolis–Hastings so that its stationary visit
  distribution is ``π_O ∝ Ψ_O / d_O``.

The time-stationary distribution of such a semi-Markov process is
``π_O · d_O / Σ π · d = Ψ`` — i.e. long traces reproduce the specified
mode execution probabilities, whatever dwell times are chosen.

Two constructions are used.  When every probable mode has a *two-way*
neighbour, a pure-Python Metropolis–Hastings walk over the symmetric
part of the transition graph suffices.  State machines with one-way
transitions (the smart phone's ``take photo → show photo`` edge, for
example) fall back to a linear program (via :mod:`scipy`): find row
distributions supported on the OMSM's edges (plus self-loops) whose
stationary distribution equals the target, minimising the self-loop
mass so the chain actually moves.  If no such chain exists (the
digraph does not connect the probable modes), construction fails
loudly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SpecificationError
from repro.specification.omsm import OMSM


class ModeProcess:
    """Markov jump chain + exponential dwells matching the Ψ vector.

    Parameters
    ----------
    omsm:
        The application whose mode dynamics to model.
    mean_dwell:
        Mean dwell time per visit, per mode (seconds).  Defaults to
        ``50 × period`` for every mode — long enough that mode-change
        overheads are rare events, as in real devices.
    """

    def __init__(
        self,
        omsm: OMSM,
        mean_dwell: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.omsm = omsm
        if mean_dwell is None:
            mean_dwell = {
                mode.name: 50.0 * mode.period for mode in omsm.modes
            }
        for mode in omsm.modes:
            if mode.name not in mean_dwell:
                raise SpecificationError(
                    f"mean dwell time missing for mode {mode.name!r}"
                )
            if mean_dwell[mode.name] <= 0:
                raise SpecificationError(
                    f"mean dwell time of mode {mode.name!r} must be "
                    f"positive"
                )
        self.mean_dwell: Dict[str, float] = dict(mean_dwell)
        self._names = list(omsm.mode_names)
        self._jump_target = self._target_jump_distribution()
        self._neighbours = self._symmetric_neighbours()
        self._transition_matrix = self._build_transition_matrix()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _target_jump_distribution(self) -> Dict[str, float]:
        """``π_O ∝ Ψ_O / d_O`` — the visit frequencies to aim for."""
        weights = {}
        for mode in self.omsm.modes:
            weights[mode.name] = (
                mode.probability / self.mean_dwell[mode.name]
            )
        total = sum(weights.values())
        if total <= 0:
            raise SpecificationError(
                "cannot build a mode process: all probabilities zero"
            )
        return {name: w / total for name, w in weights.items()}

    def _symmetric_neighbours(self) -> Dict[str, List[str]]:
        """Per mode: neighbours reachable in *both* directions."""
        neighbours: Dict[str, List[str]] = {
            name: [] for name in self._names
        }
        for transition in self.omsm.transitions:
            if self.omsm.has_transition(transition.dst, transition.src):
                if transition.dst not in neighbours[transition.src]:
                    neighbours[transition.src].append(transition.dst)
        return neighbours

    def _symmetric_graph_suffices(self) -> bool:
        """True when Metropolis–Hastings can serve every probable mode."""
        if len(self._names) == 1:
            return True
        return all(
            self._neighbours[name]
            for name in self._names
            if self._jump_target.get(name, 0.0) > 0
        )

    def _build_transition_matrix(self) -> Dict[str, Dict[str, float]]:
        if self._symmetric_graph_suffices():
            return self._metropolis_hastings_matrix()
        return self._linear_program_matrix()

    def _metropolis_hastings_matrix(
        self,
    ) -> Dict[str, Dict[str, float]]:
        """Metropolis–Hastings over the symmetric transition graph."""
        matrix: Dict[str, Dict[str, float]] = {}
        target = self._jump_target
        for src in self._names:
            adjacent = self._neighbours[src]
            row: Dict[str, float] = {}
            stay = 1.0
            if adjacent:
                proposal = 1.0 / len(adjacent)
                for dst in adjacent:
                    reverse_proposal = 1.0 / len(self._neighbours[dst])
                    acceptance = min(
                        1.0,
                        (target[dst] * reverse_proposal)
                        / (target[src] * proposal)
                        if target[src] > 0
                        else 1.0,
                    )
                    probability = proposal * acceptance
                    row[dst] = probability
                    stay -= probability
            row[src] = max(0.0, stay)
            matrix[src] = row
        return matrix

    def _linear_program_matrix(self) -> Dict[str, Dict[str, float]]:
        """General digraphs: stationary-consistent rows via an LP.

        Variables are the probabilities of every OMSM transition plus
        one self-loop per mode.  Constraints: rows sum to one and the
        target jump distribution is stationary.  The objective
        minimises the probability-weighted self-loop mass so the chain
        moves as much as the graph allows.
        """
        try:
            from scipy.optimize import linprog
        except ImportError as error:  # pragma: no cover
            raise SpecificationError(
                "the OMSM has one-way transitions; building a mode "
                "process for it requires scipy"
            ) from error

        names = self._names
        index = {name: i for i, name in enumerate(names)}
        target = [self._jump_target[name] for name in names]

        edges: List[Tuple[int, int]] = [
            (i, i) for i in range(len(names))
        ]
        for transition in self.omsm.transitions:
            edges.append(
                (index[transition.src], index[transition.dst])
            )
        variable = {edge: k for k, edge in enumerate(edges)}
        count = len(edges)

        # Row sums: for each i, sum_j p_ij = 1.
        a_eq: List[List[float]] = []
        b_eq: List[float] = []
        for i in range(len(names)):
            row = [0.0] * count
            for (src, dst), k in variable.items():
                if src == i:
                    row[k] = 1.0
            a_eq.append(row)
            b_eq.append(1.0)
        # Stationarity: for each j, sum_i target_i p_ij = target_j.
        for j in range(len(names)):
            row = [0.0] * count
            for (src, dst), k in variable.items():
                if dst == j:
                    row[k] = target[src]
            a_eq.append(row)
            b_eq.append(target[j])

        # Objective: minimise weighted self-loop mass.
        objective = [0.0] * count
        for i in range(len(names)):
            objective[variable[(i, i)]] = target[i]

        # A small lower bound on every *real* transition keeps the
        # chain irreducible (given a strongly connected OMSM), so the
        # target is its unique stationary distribution; self-loops may
        # vanish.  Degenerate state machines (a mode that cannot be
        # left) become LP-infeasible and are rejected below.
        epsilon = 1e-4
        bounds = []
        for (src, dst), _ in sorted(
            variable.items(), key=lambda item: item[1]
        ):
            if src == dst:
                bounds.append((0.0, 1.0))
            else:
                bounds.append((epsilon, 1.0))

        solution = linprog(
            objective,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if not solution.success:
            raise SpecificationError(
                "no Markov jump chain over the OMSM's transitions can "
                "realise the specified mode probabilities (the modes "
                "are not connected strongly enough)"
            )
        matrix: Dict[str, Dict[str, float]] = {
            name: {} for name in names
        }
        for (src, dst), k in variable.items():
            probability = max(0.0, float(solution.x[k]))
            if probability > 1e-12 or src == dst:
                matrix[names[src]][names[dst]] = probability
        # Normalise away numerical residue.
        for name, row in matrix.items():
            total = sum(row.values())
            matrix[name] = {
                dst: probability / total
                for dst, probability in row.items()
            }
        return matrix

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def transition_matrix(self) -> Dict[str, Dict[str, float]]:
        """The jump-chain matrix: ``{src: {dst: probability}}``."""
        return {
            src: dict(row) for src, row in self._transition_matrix.items()
        }

    def stationary_jump_distribution(self) -> Dict[str, float]:
        """Stationary distribution of the jump chain (exact solve).

        Solves ``π (P − I) = 0`` with ``Σ π = 1`` by least squares —
        robust even for slowly mixing chains where power iteration
        would need millions of steps.
        """
        import numpy

        names = self._names
        size = len(names)
        matrix = numpy.zeros((size, size))
        index = {name: i for i, name in enumerate(names)}
        for src, row in self._transition_matrix.items():
            for dst, probability in row.items():
                matrix[index[src], index[dst]] = probability
        # Transposed balance equations plus the normalisation row.
        system = numpy.vstack(
            [matrix.T - numpy.eye(size), numpy.ones((1, size))]
        )
        rhs = numpy.zeros(size + 1)
        rhs[-1] = 1.0
        solution, *_ = numpy.linalg.lstsq(system, rhs, rcond=None)
        solution = numpy.clip(solution, 0.0, None)
        solution = solution / solution.sum()
        return {name: float(solution[index[name]]) for name in names}

    def stationary_time_fractions(self) -> Dict[str, float]:
        """Long-run fraction of time per mode (should equal Ψ)."""
        jump = self.stationary_jump_distribution()
        weighted = {
            name: jump[name] * self.mean_dwell[name]
            for name in self._names
        }
        total = sum(weighted.values())
        return {name: value / total for name, value in weighted.items()}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def initial_mode(self, rng: random.Random) -> str:
        """Draw the first mode from the target jump distribution."""
        names = self._names
        weights = [self._jump_target[name] for name in names]
        return rng.choices(names, weights=weights, k=1)[0]

    def next_mode(self, current: str, rng: random.Random) -> str:
        """Draw the successor mode (may equal ``current``)."""
        row = self._transition_matrix[current]
        names = list(row)
        weights = [row[name] for name in names]
        return rng.choices(names, weights=weights, k=1)[0]

    def sample_dwell(self, mode_name: str, rng: random.Random) -> float:
        """Draw one exponential dwell time for a mode visit."""
        return rng.expovariate(1.0 / self.mean_dwell[mode_name])
