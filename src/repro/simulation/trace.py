"""Mode traces: timed sequences of mode visits."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import SpecificationError
from repro.simulation.markov import ModeProcess


@dataclass(frozen=True)
class ModeVisit:
    """One contiguous stay in a mode."""

    mode: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def generate_trace(
    process: ModeProcess,
    horizon: float,
    rng: random.Random,
    initial_mode: Optional[str] = None,
) -> List[ModeVisit]:
    """Sample a mode trace covering ``[0, horizon]``.

    Consecutive jump-chain self-loops are merged into a single visit,
    so the returned visits alternate between distinct modes (matching
    the OMSM semantics in which a transition is a mode *change*).  The
    final visit is truncated at the horizon.
    """
    if horizon <= 0:
        raise SpecificationError("simulation horizon must be positive")
    current = initial_mode or process.initial_mode(rng)
    if current not in process.omsm.mode_names:
        raise SpecificationError(f"unknown initial mode {current!r}")

    visits: List[ModeVisit] = []
    now = 0.0
    dwell = process.sample_dwell(current, rng)
    while now < horizon:
        successor = process.next_mode(current, rng)
        if successor == current:
            # Self-loop: extend the current stay.
            dwell += process.sample_dwell(current, rng)
            continue
        end = min(now + dwell, horizon)
        visits.append(ModeVisit(mode=current, start=now, end=end))
        now = end
        current = successor
        dwell = process.sample_dwell(current, rng)
    if not visits or visits[-1].end < horizon:
        # The loop exited with residual time in `current`.
        start = visits[-1].end if visits else 0.0
        if start < horizon:
            visits.append(
                ModeVisit(mode=current, start=start, end=horizon)
            )
    return visits


def time_fractions(visits: Sequence[ModeVisit]) -> dict:
    """Observed fraction of time per mode in a trace."""
    total = sum(v.duration for v in visits)
    fractions: dict = {}
    for visit in visits:
        fractions[visit.mode] = (
            fractions.get(visit.mode, 0.0) + visit.duration
        )
    return {mode: value / total for mode, value in fractions.items()}


def transition_count(visits: Sequence[ModeVisit]) -> int:
    """Number of mode changes in a trace."""
    return max(0, len(visits) - 1)
