"""Trace-driven simulation of multi-mode systems.

The synthesis estimates average power analytically (Equation 1) from
the mode execution probabilities.  This package provides the dynamic
counterpart: a semi-Markov *mode process* whose long-run time fractions
match the specified Ψ vector (:mod:`repro.simulation.markov`), a trace
generator (:mod:`repro.simulation.trace`) and an executor that replays
an implementation over a trace, accounting iteration energies, static
power, mode-change reconfiguration and partially completed iterations
(:mod:`repro.simulation.executor`).

The headline property — simulated average power converges to the
Equation-(1) estimate as the horizon grows — is exercised by the test
suite and doubles as an end-to-end validation of the power model.
"""

from repro.simulation.markov import ModeProcess
from repro.simulation.trace import ModeVisit, generate_trace
from repro.simulation.executor import SimulationReport, simulate

__all__ = [
    "ModeProcess",
    "ModeVisit",
    "SimulationReport",
    "generate_trace",
    "simulate",
]
