"""Exception hierarchy for the multi-mode co-synthesis library.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing specification problems from synthesis problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SpecificationError(ReproError):
    """An application specification (task graph, mode, OMSM) is invalid.

    Raised, for example, when a task graph contains a cycle, when mode
    execution probabilities do not sum to one, or when a transition
    references an unknown mode.
    """


class ArchitectureError(ReproError):
    """A target architecture description is inconsistent.

    Raised when a communication link references unknown processing
    elements, when a DVS-enabled component has no voltage levels, or when
    component identifiers collide.
    """


class TechnologyError(ReproError):
    """The technology library cannot support the requested operation.

    Raised when a task type has no implementation on any processing
    element, or when a mapping assigns a task to a processing element
    that cannot execute its type.
    """


class MappingError(ReproError):
    """A mapping string/genome is structurally invalid for its problem."""


class SchedulingError(ReproError):
    """A schedule could not be constructed or failed validation."""


class VoltageScalingError(ReproError):
    """Voltage selection failed (e.g. no feasible discrete level)."""


class SynthesisError(ReproError):
    """The co-synthesis driver was configured or invoked incorrectly."""


class WorkerPoolError(ReproError):
    """A parallel evaluation worker pool died or could not be created.

    Only raised when the evaluator runs with
    ``pool_failure_mode="raise"``; the default mode degrades to
    in-process evaluation instead.  A supervising runtime catches this
    to retry the affected job on a fresh pool.
    """


class CampaignError(ReproError):
    """A campaign spec or run directory is invalid or inconsistent.

    Raised, for example, when a spec references unknown problem
    instances, when ``--resume`` points at a directory without a
    ``spec.json``, or when a checkpoint file does not match the job it
    claims to belong to.
    """


class ServerError(ReproError):
    """A campaign job-server request failed.

    Carries the protocol error ``kind`` (``"invalid"``, ``"not_found"``,
    ``"conflict"``, ``"backpressure"``, ``"internal"``, …) so callers
    can branch without parsing the message.
    """

    def __init__(self, message: str, kind: str = "internal") -> None:
        super().__init__(message)
        self.kind = kind


class AdmissionError(ServerError):
    """The job server refused a submission (backpressure).

    Raised when a tenant is over its queued+running quota or the
    server's global queue bound is reached.  This is the *typed*
    rejection clients are expected to back off on; every rejection is
    also counted in ``server_admission_rejections_total{tenant}``.
    """

    def __init__(self, message: str, tenant: str = "") -> None:
        super().__init__(message, kind="backpressure")
        self.tenant = tenant
