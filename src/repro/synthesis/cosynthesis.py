"""The multi-mode co-synthesis entry point (paper Fig. 4, complete loop).

:class:`MultiModeSynthesizer` is the stable façade over the generation
pipeline: it builds the
:class:`~repro.engine.backend.EvaluationBackend` a configuration asks
for, hands it to the :class:`~repro.synthesis.driver.GenerationDriver`,
and owns the backend's lifecycle (graceful close on success, hard
terminate on any error or interrupt).  The GA itself — random initial
population, per-candidate evaluation (mobilities → cores → per-mode
scheduling → optional DVS → fitness), linear-scaling ranking,
tournament selection, two-point crossover, offspring insertion with
elitism, the four improvement mutations, speculation, and the
local-search polish — lives in the stage modules
(:mod:`repro.synthesis.operators`, :mod:`repro.synthesis.improvements`,
:mod:`repro.synthesis.speculation`) composed by the driver.  The run
terminates on convergence (no improvement of the best fitness for a
configured number of generations) or at the generation limit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.backend import EvaluationBackend, backend_for
from repro.engine.records import EvalRecord
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.driver import GenerationDriver, SynthesisResult
from repro.synthesis.state import GAState

__all__ = [
    "MultiModeSynthesizer",
    "SynthesisResult",
    "synthesize",
]

# Backwards-compatible alias: the per-genome cache entry moved to
# :mod:`repro.engine.records` so pool workers can ship it between
# processes without importing the synthesis stack.
_EvalRecord = EvalRecord


class MultiModeSynthesizer:
    """GA-based co-synthesis of one multi-mode problem instance."""

    def __init__(self, problem: Problem, config: SynthesisConfig) -> None:
        self.problem = problem
        self.config = config
        self._driver = GenerationDriver(problem, config)

    # ------------------------------------------------------------------
    # Driver delegation (the historical internal surface — kept because
    # warm-started re-synthesis and the determinism tests rely on the
    # per-genome cache and its counters living on the synthesizer)
    # ------------------------------------------------------------------

    @property
    def _cache(self) -> Dict[MappingString, _EvalRecord]:
        return self._driver.genome_cache

    @property
    def _evaluations(self) -> int:
        return self._driver.evaluations

    @property
    def _cache_hits(self) -> int:
        return self._driver.cache_hits

    @property
    def _dedup_hits(self) -> int:
        return self._driver.dedup_hits

    def _evaluate(self, genome: MappingString) -> _EvalRecord:
        return self._driver.evaluate_one(genome)

    def _evaluate_population(
        self,
        population: Sequence[MappingString],
        backend: Optional[EvaluationBackend],
    ) -> List[_EvalRecord]:
        """Evaluate one generation (``None`` backend = in-process)."""
        return self._driver.evaluate_population(population, backend)

    # ------------------------------------------------------------------
    # The optimisation loop
    # ------------------------------------------------------------------

    def run(
        self,
        resume: Optional[GAState] = None,
        on_generation: Optional[Callable[[GAState], None]] = None,
    ) -> SynthesisResult:
        """Execute the GA and return the best implementation found.

        With ``config.jobs > 1`` a pooled backend (and its process
        pool) lives for the duration of the run; evaluation results
        are bit-identical to the serial path either way.

        ``resume`` continues a previous run from a
        :class:`~repro.synthesis.state.GAState` snapshot —
        bit-identically, because the snapshot carries the RNG state and
        the full population.  ``on_generation`` is called with a fresh
        snapshot after every completed generation; a checkpointing
        runtime persists (some of) these snapshots to disk.
        """
        backend = backend_for(self.problem, self.config)
        try:
            result = self._driver.run(backend, resume, on_generation)
        except BaseException:
            # Ctrl-C (or any error) can leave queued pool tasks whose
            # feeder thread died with the interrupt; a graceful
            # close()+join() would then wait forever for worker
            # sentinels that never arrive.  Hard-stop instead.
            backend.terminate()
            raise
        backend.close()
        return result


def synthesize(
    problem: Problem, config: Optional[SynthesisConfig] = None
) -> SynthesisResult:
    """One-call co-synthesis with default (or given) configuration."""
    if config is None:
        config = SynthesisConfig()
    return MultiModeSynthesizer(problem, config).run()
