"""The multi-mode co-synthesis driver (paper Fig. 4, complete loop).

:class:`MultiModeSynthesizer` runs the genetic algorithm over multi-mode
mapping strings: random initial population, per-candidate evaluation
(mobilities → cores → per-mode scheduling → optional DVS → fitness),
linear-scaling ranking, tournament selection, two-point crossover,
offspring insertion with elitism, and the four improvement mutations.
The run terminates on convergence (no improvement of the best fitness
for a configured number of generations) or at the generation limit.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.engine.decode_cache import context_for
from repro.engine.parallel import ParallelEvaluator
from repro.engine.profile import PROFILER, PerfStats
from repro.engine.records import EvalRecord, record_from_implementation
from repro.obs.metrics import REGISTRY
from repro.mapping.encoding import MappingString
from repro.mapping.implementation import Implementation
from repro.problem import Problem
from repro.synthesis import ga
from repro.synthesis import mutations
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping
from repro.synthesis.state import GAState

# Backwards-compatible alias: the per-genome cache entry moved to
# :mod:`repro.engine.records` so pool workers can ship it between
# processes without importing the synthesis stack.
_EvalRecord = EvalRecord


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run.

    ``best`` is the fully decoded best implementation found; ``history``
    records the best fitness after every generation; ``cpu_time`` is the
    wall-clock optimisation time in seconds (the quantity the paper's
    "CPU time" columns report); ``perf`` carries the per-phase timing
    and cache statistics collected by the evaluation engine;
    ``mode_powers`` is the stable per-mode power breakdown (see below).
    """

    best: Implementation
    generations: int
    evaluations: int
    cpu_time: float
    history: List[float] = field(default_factory=list)
    perf: Optional[PerfStats] = None
    #: Per-mode power breakdown of the best candidate, in watts:
    #: ``{mode: {"dynamic": …, "static": …}}``.  This is the quantity
    #: Equation (1) is *linear* in — ``p̄(Ψ) = Σ_O (dyn_O + stat_O)·Ψ_O``
    #: for any probability vector — so persisting it lets any stored
    #: design be re-scored exactly under a new Ψ without re-simulation
    #: (the foundation of :mod:`repro.adaptive`).  Serialised by
    #: :func:`repro.io.result_to_dict` and carried on campaign
    #: ``job_finished`` events / result records.
    mode_powers: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.mode_powers and self.best is not None:
            metrics = self.best.metrics
            self.mode_powers = {
                mode: {
                    "dynamic": metrics.dynamic_power[mode],
                    "static": metrics.static_power[mode],
                }
                for mode in metrics.dynamic_power
            }

    @property
    def average_power(self) -> float:
        """True-probability Equation (1) power of the best candidate."""
        return self.best.metrics.average_power

    @property
    def is_feasible(self) -> bool:
        return self.best.metrics.is_feasible

    def mode_power(self, mode_name: str) -> float:
        """Total (dynamic + static) power of one mode, in watts."""
        entry = self.mode_powers[mode_name]
        return entry["dynamic"] + entry["static"]


class MultiModeSynthesizer:
    """GA-based co-synthesis of one multi-mode problem instance."""

    def __init__(self, problem: Problem, config: SynthesisConfig) -> None:
        self.problem = problem
        self.config = config
        self._cache: Dict[MappingString, _EvalRecord] = {}
        self._evaluations = 0
        self._cache_hits = 0
        self._dedup_hits = 0

    # ------------------------------------------------------------------
    # Evaluation with caching
    # ------------------------------------------------------------------

    def _evaluate(self, genome: MappingString) -> _EvalRecord:
        record = self._cache.get(genome)
        if record is not None:
            self._cache_hits += 1
            return record
        self._evaluations += 1
        implementation = evaluate_mapping(self.problem, genome, self.config)
        record = record_from_implementation(implementation)
        self._cache[genome] = record
        return record

    def _evaluate_population(
        self,
        population: Sequence[MappingString],
        evaluator: Optional[ParallelEvaluator],
    ) -> List[_EvalRecord]:
        """Evaluate one generation: dedup, cache lookup, batch dispatch.

        Duplicate population slots (clones survive crossover and
        elitism routinely) collapse to one evaluation, cached genomes
        are answered without re-decoding, and only the remaining unique
        misses reach the process pool — or the in-process loop when no
        pool is active.  Results are returned per slot, in population
        order.
        """
        unique: Dict[MappingString, None] = {}
        for genome in population:
            unique.setdefault(genome, None)
        self._dedup_hits += len(population) - len(unique)
        pending = [g for g in unique if g not in self._cache]
        self._cache_hits += len(unique) - len(pending)
        if pending:
            if evaluator is not None:
                results = evaluator.evaluate_batch(pending)
            else:
                context = (
                    context_for(self.problem)
                    if self.config.decode_cache
                    else None
                )
                results = [
                    record_from_implementation(
                        evaluate_mapping(
                            self.problem, genome, self.config, context
                        )
                    )
                    for genome in pending
                ]
            self._evaluations += len(pending)
            for genome, record in zip(pending, results):
                self._cache[genome] = record
        return [self._cache[genome] for genome in population]

    # ------------------------------------------------------------------
    # The optimisation loop
    # ------------------------------------------------------------------

    def run(
        self,
        resume: Optional[GAState] = None,
        on_generation: Optional[Callable[[GAState], None]] = None,
    ) -> SynthesisResult:
        """Execute the GA and return the best implementation found.

        With ``config.jobs > 1`` a :class:`ParallelEvaluator` (and its
        process pool) lives for the duration of the run; evaluation
        results are bit-identical to the serial path either way.

        ``resume`` continues a previous run from a
        :class:`~repro.synthesis.state.GAState` snapshot —
        bit-identically, because the snapshot carries the RNG state and
        the full population.  ``on_generation`` is called with a fresh
        snapshot after every completed generation; a checkpointing
        runtime persists (some of) these snapshots to disk.
        """
        evaluator: Optional[ParallelEvaluator] = None
        if self.config.jobs > 1:
            evaluator = ParallelEvaluator(self.problem, self.config)
        try:
            result = self._run(evaluator, resume, on_generation)
        except BaseException:
            # Ctrl-C (or any error) can leave queued pool tasks whose
            # feeder thread died with the interrupt; a graceful
            # close()+join() would then wait forever for worker
            # sentinels that never arrive.  Hard-stop instead.
            if evaluator is not None:
                evaluator.terminate()
            raise
        if evaluator is not None:
            evaluator.close()
        return result

    def _run(
        self,
        evaluator: Optional[ParallelEvaluator],
        resume: Optional[GAState] = None,
        on_generation: Optional[Callable[[GAState], None]] = None,
    ) -> SynthesisResult:
        config = self.config
        started = time.perf_counter()
        profile_base = PROFILER.snapshot()
        metrics_base = REGISTRY.snapshot()
        mutation_rate = config.per_gene_mutation_rate
        if mutation_rate is None:
            mutation_rate = 1.0 / max(1, self.problem.genome_length())

        if resume is not None:
            # Continue exactly where the snapshot left off: the RNG
            # resumes mid-stream, the population is the bred-and-mutated
            # one the interrupted run would have evaluated next.
            rng = resume.restore_rng()
            population = [
                MappingString(self.problem, genes)
                for genes in resume.population
            ]
            if len(population) != config.population_size:
                raise SynthesisError(
                    f"resume snapshot has population "
                    f"{len(population)}, configuration expects "
                    f"{config.population_size}"
                )
            best_genome = (
                MappingString(self.problem, resume.best_genes)
                if resume.best_genes is not None
                else None
            )
            best_fitness = resume.best_fitness
            stagnant = resume.stagnant
            area_stall = resume.area_stall
            timing_stall = resume.timing_stall
            transition_stall = resume.transition_stall
            history = list(resume.history)
            self._evaluations = resume.evaluations
            generation = resume.generation
            start_generation = resume.generation + 1
        else:
            rng = random.Random(config.seed)
            # Half the initial population is uniformly random, half is
            # software-biased: on large problems uniform genomes map
            # ~half of all tasks into hardware and violate every area
            # constraint, leaving the GA without a feasible foothold.
            population = []
            for index in range(config.population_size):
                if index % 2 == 0:
                    population.append(
                        MappingString.random(self.problem, rng)
                    )
                else:
                    population.append(
                        MappingString.random_software_biased(
                            self.problem, rng, bias=rng.uniform(0.6, 0.98)
                        )
                    )
            best_genome = None
            best_fitness = math.inf
            stagnant = 0
            area_stall = 0
            timing_stall = 0
            transition_stall = 0
            history = []
            generation = 0
            start_generation = 1

        for generation in range(
            start_generation, config.max_generations + 1
        ):
            generation_started = time.perf_counter()
            records = self._evaluate_population(population, evaluator)

            improved = False
            for genome, record in zip(population, records):
                if record.fitness < best_fitness - 1e-15:
                    best_fitness = record.fitness
                    best_genome = genome
                    improved = True
            stagnant = 0 if improved else stagnant + 1
            history.append(best_fitness)
            REGISTRY.inc("ga_generations_total")
            if math.isfinite(best_fitness):
                REGISTRY.set_gauge("ga_best_fitness", best_fitness)

            if stagnant >= config.convergence_generations:
                REGISTRY.observe(
                    "ga_generation_seconds",
                    time.perf_counter() - generation_started,
                )
                break
            if (
                stagnant > 0
                and stagnant % max(2, config.convergence_generations // 2)
                == 0
            ):
                # Partial restart against premature convergence: the
                # worst half of the population is replaced with fresh
                # random/software-biased genomes (elites and the best
                # are never touched).
                population = self._partial_restart(
                    population, records, rng
                )
                records = self._evaluate_population(population, evaluator)

            # --- ranking, selection, crossover, insertion --------------
            ranked = ga.rank_population(
                list(zip(population, (r.fitness for r in records))),
                config.selection_pressure,
            )
            parents = ga.select_mating_pool(
                ranked,
                rng,
                config.tournament_size,
                config.population_size - config.elite_count,
            )
            offspring = ga.breed(
                parents, rng, config.crossover_rate, mutation_rate
            )
            if config.group_mutation_rate > 0:
                offspring = [
                    self._maybe_group_move(child, rng)
                    for child in offspring
                ]
            population = ga.insert_offspring(
                ranked,
                offspring,
                config.elite_count,
                config.population_size,
            )

            # --- improvement mutations ---------------------------------
            area_stall, timing_stall, transition_stall = self._update_stalls(
                records, area_stall, timing_stall, transition_stall
            )
            population = self._apply_improvements(
                population,
                records,
                rng,
                area_stall,
                timing_stall,
                transition_stall,
                best_genome,
            )
            if area_stall >= config.stall_generations:
                area_stall = 0
            if timing_stall >= config.stall_generations:
                timing_stall = 0
            if transition_stall >= config.stall_generations:
                transition_stall = 0

            REGISTRY.observe(
                "ga_generation_seconds",
                time.perf_counter() - generation_started,
            )
            if on_generation is not None:
                # The end of the generation body is the one clean
                # resume point: the next-generation population is bred,
                # the counters are settled, and no RNG draw separates
                # this state from the top of the next iteration.
                on_generation(
                    GAState(
                        generation=generation,
                        rng_state=rng.getstate(),
                        population=[g.genes for g in population],
                        best_genes=(
                            best_genome.genes
                            if best_genome is not None
                            else None
                        ),
                        best_fitness=best_fitness,
                        stagnant=stagnant,
                        area_stall=area_stall,
                        timing_stall=timing_stall,
                        transition_stall=transition_stall,
                        history=list(history),
                        evaluations=self._evaluations,
                    )
                )

        if best_genome is None:
            raise SynthesisError(
                "synthesis produced no evaluable candidate (architecture "
                "may be missing communication links)"
            )
        if config.local_search_budget_factor > 0:
            best_genome = self._local_search(best_genome, rng)
        best = evaluate_mapping(self.problem, best_genome, self.config)
        if best is None:  # pragma: no cover - guarded by fitness < inf
            raise SynthesisError("best candidate became infeasible")
        elapsed = time.perf_counter() - started
        perf = PerfStats(
            evaluations=self._evaluations,
            cache_hits=self._cache_hits,
            dedup_hits=self._dedup_hits,
            wall_time=elapsed,
            jobs=config.jobs,
        )
        perf.merge_phase_totals(PROFILER.delta_since(profile_base))
        if evaluator is not None:
            perf.merge_phase_totals(evaluator.worker_phase_totals)
            perf.batches = evaluator.batches
            perf.parallel_evaluations = evaluator.parallel_evaluations
            perf.pool_busy_seconds = evaluator.pool_busy_seconds
            perf.pool_workers = evaluator.pool_workers
            perf.pool_service_seconds = evaluator.pool_service_seconds
            perf.pool_dispatch_seconds = evaluator.pool_dispatch_seconds
            perf.pool_steals = evaluator.pool_steals
            perf.pool_fallbacks = evaluator.pool_failures
            perf.inprocess_evaluations = evaluator.inprocess_evaluations
            perf.inprocess_eval_seconds = evaluator.inprocess_eval_seconds
        # Mode-result cache activity of this run: sum the labelled
        # counters (per mode, per stage) accumulated since the start.
        # Pool-worker activity is already folded in — chunk results
        # merge their metric deltas into this registry on arrival.
        metrics_delta = REGISTRY.delta_since(metrics_base).get("counters", {})
        for (metric_name, _labels), value in metrics_delta.items():
            if metric_name == "eval_mode_cache_hits_total":
                perf.mode_cache_hits += int(value)
            elif metric_name == "eval_mode_cache_misses_total":
                perf.mode_cache_misses += int(value)
            elif metric_name == "eval_mode_cache_evictions_total":
                perf.mode_cache_evictions += int(value)
        REGISTRY.inc("ga_runs_total")
        REGISTRY.inc("ga_cache_hits_total", self._cache_hits)
        REGISTRY.inc("ga_dedup_hits_total", self._dedup_hits)
        return SynthesisResult(
            best=best,
            generations=generation,
            evaluations=self._evaluations,
            cpu_time=elapsed,
            history=history,
            perf=perf,
        )

    def _maybe_group_move(
        self, genome: MappingString, rng: random.Random
    ) -> MappingString:
        if rng.random() >= self.config.group_mutation_rate:
            return genome
        moved = mutations.type_group_move(genome, rng)
        return moved if moved is not None else genome

    def _exchange_pass(
        self,
        current: MappingString,
        current_fitness: float,
        budget: int,
        rng: random.Random,
    ) -> Tuple[MappingString, float, int, bool]:
        """One pass of cross-mode type exchanges on hardware components.

        For every hardware PE, tries replacing one resident task type
        (all its tasks, in every mode, moved to a software PE) with one
        absent supported type (all its tasks moved in).  Returns the
        possibly improved genome, its fitness, evaluations spent and
        whether anything improved.
        """
        problem = self.problem
        software = [
            pe.name for pe in problem.architecture.software_pes()
        ]
        if not software:
            return current, current_fitness, 0, False
        spent = 0
        improved = False

        def cross_mode_replacements(
            task_type: str,
            target: str,
            only_from: Optional[str] = None,
        ) -> Dict[int, str]:
            """Gene changes moving a type to ``target`` in every mode.

            With ``only_from`` set, only tasks currently on that PE
            move — evicting a type from one component must not disturb
            its placements elsewhere.
            """
            changes: Dict[int, str] = {}
            for mode in problem.omsm.modes:
                for task in mode.task_graph.tasks_of_type(task_type):
                    index = current.gene_index(mode.name, task.name)
                    gene = current.genes[index]
                    if gene == target:
                        continue
                    if only_from is not None and gene != only_from:
                        continue
                    changes[index] = target
            return changes

        for pe in problem.architecture.hardware_pes():
            resident_types = {
                task.task_type
                for mode in problem.omsm.modes
                for task in mode.task_graph
                if current.pe_of(mode.name, task.name) == pe.name
            }
            resident = sorted(resident_types)
            supported = [
                t
                for t in problem.technology.task_types()
                if problem.technology.supports(t, pe.name)
                and t in problem.omsm.all_task_types()
            ]
            absent = [t for t in supported if t not in resident]
            rng.shuffle(resident)
            rng.shuffle(absent)
            for type_out in resident:
                if spent >= budget:
                    return current, current_fitness, spent, improved
                out_sw = [
                    s
                    for s in software
                    if problem.technology.supports(type_out, s)
                ]
                if not out_sw:
                    continue
                for type_in in absent:
                    if spent >= budget:
                        return (
                            current,
                            current_fitness,
                            spent,
                            improved,
                        )
                    changes = cross_mode_replacements(
                        type_out, out_sw[0], only_from=pe.name
                    )
                    changes.update(
                        cross_mode_replacements(type_in, pe.name)
                    )
                    if not changes:
                        continue
                    candidate = current.with_genes(changes)
                    record = self._evaluate(candidate)
                    spent += 1
                    if record.fitness < current_fitness - 1e-15:
                        current = candidate
                        current_fitness = record.fitness
                        improved = True
                        break
        return current, current_fitness, spent, improved

    # ------------------------------------------------------------------
    # Diversity maintenance
    # ------------------------------------------------------------------

    def _partial_restart(
        self,
        population: List[MappingString],
        records: Sequence[_EvalRecord],
        rng: random.Random,
    ) -> List[MappingString]:
        """Replace the worst half of the population with fresh genomes."""
        order = sorted(
            range(len(population)), key=lambda i: records[i].fitness
        )
        keep = order[: max(1, len(population) // 2)]
        refreshed = [population[i] for i in keep]
        while len(refreshed) < len(population):
            if rng.random() < 0.5:
                refreshed.append(
                    MappingString.random(self.problem, rng)
                )
            else:
                refreshed.append(
                    MappingString.random_software_biased(
                        self.problem, rng, bias=rng.uniform(0.6, 0.98)
                    )
                )
        return refreshed

    # ------------------------------------------------------------------
    # Final polish
    # ------------------------------------------------------------------

    def _local_search(
        self, genome: MappingString, rng: random.Random
    ) -> MappingString:
        """First-improvement descent on the best genome, two move kinds.

        Alternates (a) *group moves* — all tasks of one (mode, type)
        onto one PE, the granularity at which hardware cores are paid
        for — and (b) single-gene moves.  Improvements are accepted
        immediately and the pass continues; the search stops when
        neither move kind improves or the evaluation budget
        (``local_search_budget_factor × genome length``) is spent.
        """
        current = genome
        current_fitness = self._evaluate(current).fitness
        spent = 0

        group_moves: List[Tuple[str, str, str]] = []
        for mode in self.problem.omsm.modes:
            for task_type in sorted(mode.task_graph.task_types()):
                for pe in self.problem.technology.candidate_pes(
                    task_type
                ):
                    group_moves.append((mode.name, task_type, pe))

        # The budget scales with the size of the *neighbourhood* (one
        # full pass over single-gene moves and group moves), not just
        # the genome length — on small problems the neighbourhood is
        # several times the gene count and a genome-length budget would
        # end the search before a single complete pass.
        single_moves = sum(
            len(current.candidates_at(index)) - 1
            for index in range(len(current))
        )
        budget = int(
            self.config.local_search_budget_factor
            * max(1, single_moves + len(group_moves))
        )

        improved = True
        while improved and spent < budget:
            improved = False

            # Phase 0: knapsack exchanges — swap which task types own
            # area on a hardware component, across all modes at once.
            # Area-full components are local optima for every smaller
            # move kind; only an exchange escapes them.
            current, current_fitness, used, improved_swap = (
                self._exchange_pass(
                    current, current_fitness, budget - spent, rng
                )
            )
            spent += used
            improved = improved or improved_swap

            # Phase a: coordinated type-group moves.
            rng.shuffle(group_moves)
            for mode_name, task_type, pe in group_moves:
                if spent >= budget:
                    break
                graph = self.problem.omsm.mode(mode_name).task_graph
                replacements = {
                    current.gene_index(mode_name, task.name): pe
                    for task in graph.tasks_of_type(task_type)
                    if current.pe_of(mode_name, task.name) != pe
                }
                if not replacements:
                    continue
                candidate = current.with_genes(replacements)
                record = self._evaluate(candidate)
                spent += 1
                if record.fitness < current_fitness - 1e-15:
                    current = candidate
                    current_fitness = record.fitness
                    improved = True

            # Phase b: single-gene refinements.
            order = list(range(len(current)))
            rng.shuffle(order)
            for index in order:
                if spent >= budget:
                    break
                gene = current.genes[index]
                for alternative in current.candidates_at(index):
                    if alternative == gene:
                        continue
                    candidate = current.with_gene(index, alternative)
                    record = self._evaluate(candidate)
                    spent += 1
                    if record.fitness < current_fitness - 1e-15:
                        current = candidate
                        current_fitness = record.fitness
                        improved = True
                        break
                    if spent >= budget:
                        break
        return current

    # ------------------------------------------------------------------
    # Improvement strategies
    # ------------------------------------------------------------------

    def _update_stalls(
        self,
        records: Sequence[_EvalRecord],
        area_stall: int,
        timing_stall: int,
        transition_stall: int,
    ) -> Tuple[int, int, int]:
        """Streak counters for the repair mutations.

        A constraint class stalls while the generation's *best*
        candidate violates it — i.e. the search keeps producing
        solutions whose penalised fitness beats every feasible one.
        This is the situation the paper's repair strategies target
        ("if only infeasible mappings have been produced for a certain
        number of generations").
        """
        finite = [r for r in records if math.isfinite(r.fitness)]
        if not finite:
            return area_stall + 1, timing_stall + 1, transition_stall + 1
        best = min(finite, key=lambda r: r.fitness)
        return (
            area_stall + 1 if best.area_violating_pes else 0,
            timing_stall + 1 if best.timing_violating_modes else 0,
            transition_stall + 1 if best.transition_violating else 0,
        )

    def _apply_improvements(
        self,
        population: List[MappingString],
        records: Sequence[_EvalRecord],
        rng: random.Random,
        area_stall: int,
        timing_stall: int,
        transition_stall: int,
        best_genome: Optional[MappingString] = None,
    ) -> List[MappingString]:
        config = self.config
        elite = config.elite_count

        if config.enable_shutdown_improvement:
            for index in range(elite, len(population)):
                if rng.random() < config.shutdown_mutation_rate:
                    improved = mutations.shutdown_improvement(
                        population[index],
                        rng,
                        config.bias_shutdown_by_probability,
                    )
                    if improved is not None:
                        population[index] = improved

        def repair_indices() -> List[int]:
            count = max(
                1, int(config.repair_fraction * (len(population) - elite))
            )
            candidates = list(range(elite, len(population)))
            rng.shuffle(candidates)
            return candidates[:count]

        if (
            config.enable_area_improvement
            and area_stall >= config.stall_generations
        ):
            violating = sorted(
                {
                    pe
                    for record in records
                    for pe in record.area_violating_pes
                }
            )
            targets = repair_indices()
            for index in targets:
                improved = mutations.area_improvement(
                    population[index], rng, violating
                )
                if improved is not None:
                    population[index] = improved
            # Repairing the current best is the most promising move: it
            # is the candidate whose penalised fitness dominates the
            # search despite its violation.
            if best_genome is not None and targets:
                # A gentle trim: typically only a few cores overflow.
                repaired_best = mutations.area_improvement(
                    best_genome, rng, violating, move_fraction=0.15
                )
                if repaired_best is not None:
                    population[targets[0]] = repaired_best

        if (
            config.enable_timing_improvement
            and timing_stall >= config.stall_generations
        ):
            violating_modes = sorted(
                {
                    mode
                    for record in records
                    for mode in record.timing_violating_modes
                }
            )
            for index in repair_indices():
                improved = mutations.timing_improvement(
                    population[index], rng, violating_modes
                )
                if improved is not None:
                    population[index] = improved

        if (
            config.enable_transition_improvement
            and transition_stall >= config.stall_generations
        ):
            for index in repair_indices():
                improved = mutations.transition_improvement(
                    population[index], rng, ()
                )
                if improved is not None:
                    population[index] = improved

        return population


def synthesize(
    problem: Problem, config: Optional[SynthesisConfig] = None
) -> SynthesisResult:
    """One-call co-synthesis with default (or given) configuration."""
    if config is None:
        config = SynthesisConfig()
    return MultiModeSynthesizer(problem, config).run()
