"""Area/power design-space exploration.

The paper stresses that its savings come "without a modification of the
underlying hardware architecture, i.e. the system costs are not
increased".  This module explores the complementary question a designer
asks next: *how does the achievable average power move when hardware
area is bought or cut?*  It sweeps a scale factor over every hardware
component's area, re-runs the co-synthesis at each point and reports
the resulting trade-off curve (non-dominated points marked).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.io import problem_from_dict, problem_to_dict
from repro.problem import Problem
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer


@dataclass(frozen=True)
class TradeoffPoint:
    """One evaluated point of the area/power sweep."""

    area_scale: float
    total_hw_area: float
    average_power: float
    feasible_runs: int
    runs: int

    @property
    def all_feasible(self) -> bool:
        return self.feasible_runs == self.runs


def scale_hardware_area(problem: Problem, scale: float) -> Problem:
    """A fresh problem instance with every HW component's area scaled."""
    if scale <= 0:
        raise ValueError("area scale must be positive")
    data = problem_to_dict(problem)
    for pe in data["pes"]:
        if pe["kind"] in ("asic", "fpga"):
            pe["area"] = pe["area"] * scale
    return problem_from_dict(data)


def area_power_tradeoff(
    problem: Problem,
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
    config: Optional[SynthesisConfig] = None,
    runs: int = 1,
    base_seed: int = 0,
) -> List[TradeoffPoint]:
    """Sweep hardware area and synthesise at every point.

    Powers are averaged over ``runs`` feasible synthesis runs per point
    (infeasible runs are counted but excluded from the average, unless
    no run is feasible).
    """
    if config is None:
        config = SynthesisConfig()
    points: List[TradeoffPoint] = []
    for scale in scales:
        scaled = scale_hardware_area(problem, scale)
        total_area = sum(
            pe.area for pe in scaled.architecture.hardware_pes()
        )
        powers: List[float] = []
        fallback: List[float] = []
        feasible_runs = 0
        for run in range(runs):
            result = MultiModeSynthesizer(
                scaled, config.with_updates(seed=base_seed + run)
            ).run()
            fallback.append(result.average_power)
            if result.is_feasible:
                powers.append(result.average_power)
                feasible_runs += 1
        chosen = powers or fallback
        points.append(
            TradeoffPoint(
                area_scale=scale,
                total_hw_area=total_area,
                average_power=statistics.mean(chosen),
                feasible_runs=feasible_runs,
                runs=runs,
            )
        )
    return points


def pareto_front(
    points: Sequence[TradeoffPoint],
) -> List[TradeoffPoint]:
    """The non-dominated subset (less area and less power is better)."""
    front: List[TradeoffPoint] = []
    for point in points:
        dominated = any(
            other.total_hw_area <= point.total_hw_area
            and other.average_power <= point.average_power
            and (
                other.total_hw_area < point.total_hw_area
                or other.average_power < point.average_power
            )
            for other in points
        )
        if not dominated:
            front.append(point)
    return sorted(front, key=lambda p: p.total_hw_area)


def format_tradeoff(points: Sequence[TradeoffPoint]) -> str:
    """Human-readable sweep table with Pareto markers."""
    front = set(
        (p.area_scale, p.average_power) for p in pareto_front(points)
    )
    lines = [
        f"{'scale':>7}{'HW area':>12}{'power (mW)':>13}"
        f"{'feasible':>10}{'pareto':>8}",
        "-" * 50,
    ]
    for point in points:
        marker = (
            "*"
            if (point.area_scale, point.average_power) in front
            else ""
        )
        lines.append(
            f"{point.area_scale:>7.2f}{point.total_hw_area:>12.0f}"
            f"{point.average_power * 1e3:>13.3f}"
            f"{point.feasible_runs:>6}/{point.runs:<3}{marker:>8}"
        )
    return "\n".join(lines)
