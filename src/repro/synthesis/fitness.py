"""The mapping fitness ``F_M`` (paper Fig. 4, line 14).

``F_M = p̄ · tp · (1 + w_A · Σ_{π∈P_v} (a_π^U − a_π^max)/(a_π^max · 0.01))
            · (w_R · Π_{T∈Θ_v} t_T / t_T^max)``

where ``p̄`` is the average power under the *optimisation* probability
vector, ``tp`` a timing penalty, ``P_v`` the PEs with area violations
and ``Θ_v`` the transitions exceeding their time limits.  Lower is
better.  As written in the paper, the last factor would vanish for
feasible candidates (an empty product times ``w_R``); it is clearly
meant to apply only when transition violations exist, so this
implementation uses 1 for feasible candidates and
``w_R · Π (t_T / t_T^max)`` (each ratio > 1) otherwise — the same
behaviour the paper's text describes ("a transition time penalty is
applied for all transitions that exceed their limit").

The timing penalty follows the same pattern: 1 when every deadline is
met, and ``1 + w_T · Σ overshoot/deadline`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.problem import Problem


@dataclass(frozen=True)
class FitnessWeights:
    """Penalty weights of the fitness function."""

    area: float = 20.0
    transition: float = 10.0
    timing: float = 20.0


def timing_penalty(
    problem: Problem,
    timing_violations: Mapping[str, Mapping[str, float]],
    weight: float,
) -> float:
    """``tp``: 1 if all deadlines met, grows with relative overshoot.

    ``timing_violations`` maps mode name → {task: overshoot seconds}.
    Overshoots are normalised by the task's effective deadline so the
    penalty is scale-free.
    """
    total = 0.0
    for mode in problem.omsm.modes:
        violations = timing_violations.get(mode.name, {})
        for task_name, overshoot in violations.items():
            deadline = mode.effective_deadline(task_name)
            total += overshoot / deadline
    if total <= 0:
        return 1.0
    return 1.0 + weight * total


def area_penalty_factor(
    problem: Problem,
    area_violations: Mapping[str, float],
    weight: float,
) -> float:
    """``1 + w_A · Σ (a^U − a^max)/(a^max · 0.01)`` over violating PEs.

    The division by ``a^max · 0.01`` expresses the overshoot in percent,
    exactly as in the paper.
    """
    total = 0.0
    for pe_name, overshoot in area_violations.items():
        limit = problem.architecture.pe(pe_name).area
        total += overshoot / (limit * 0.01)
    return 1.0 + weight * total


def transition_penalty_factor(
    transition_violations: Mapping[Tuple[str, str], float],
    weight: float,
) -> float:
    """1 when feasible, else ``w_R · Π (t_T / t_T^max)``.

    ``transition_violations`` maps transition key → ratio
    ``t_T / t_T^max`` (each > 1).
    """
    if not transition_violations:
        return 1.0
    product = 1.0
    for ratio in transition_violations.values():
        product *= ratio
    return max(1.0, weight * product)


def mapping_fitness(
    problem: Problem,
    average_power: float,
    timing_violations: Mapping[str, Mapping[str, float]],
    area_violations: Mapping[str, float],
    transition_violations: Mapping[Tuple[str, str], float],
    weights: FitnessWeights,
) -> float:
    """Combine power and penalties into the scalar fitness (minimise)."""
    return (
        average_power
        * timing_penalty(problem, timing_violations, weights.timing)
        * area_penalty_factor(problem, area_violations, weights.area)
        * transition_penalty_factor(
            transition_violations, weights.transition
        )
    )
