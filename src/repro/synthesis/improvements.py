"""Improvement, restart and local-search stages of the generation loop.

Like :mod:`repro.synthesis.operators`, everything here is a pure
function over explicit inputs (population, evaluation records, stall
counters, an RNG): the paper's four improvement strategies, the
partial-restart diversity mechanism, and the post-convergence
first-improvement local search.  The driver composes them; the
speculation layer replays :func:`update_stalls` and
:func:`apply_improvements` on a cloned RNG to predict the next
generation exactly.

The local-search helpers take an ``evaluate`` callable instead of
touching any evaluator directly — the driver passes its cached
single-candidate path, keeping these functions oblivious to backends.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.records import EvalRecord
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.synthesis import mutations
from repro.synthesis.config import SynthesisConfig

#: Single-candidate evaluation hook used by the local-search stages.
EvaluateFn = Callable[[MappingString], EvalRecord]


def restart_due(config: SynthesisConfig, stagnant: int) -> bool:
    """Whether this stagnation streak triggers a partial restart."""
    return (
        stagnant > 0
        and stagnant % max(2, config.convergence_generations // 2) == 0
    )


def partial_restart(
    problem: Problem,
    population: List[MappingString],
    records: Sequence[EvalRecord],
    rng: random.Random,
) -> List[MappingString]:
    """Replace the worst half of the population with fresh genomes."""
    order = sorted(
        range(len(population)), key=lambda i: records[i].fitness
    )
    keep = order[: max(1, len(population) // 2)]
    refreshed = [population[i] for i in keep]
    while len(refreshed) < len(population):
        if rng.random() < 0.5:
            refreshed.append(MappingString.random(problem, rng))
        else:
            refreshed.append(
                MappingString.random_software_biased(
                    problem, rng, bias=rng.uniform(0.6, 0.98)
                )
            )
    return refreshed


def update_stalls(
    records: Sequence[EvalRecord],
    area_stall: int,
    timing_stall: int,
    transition_stall: int,
) -> Tuple[int, int, int]:
    """Streak counters for the repair mutations.

    A constraint class stalls while the generation's *best* candidate
    violates it — i.e. the search keeps producing solutions whose
    penalised fitness beats every feasible one.  This is the situation
    the paper's repair strategies target ("if only infeasible mappings
    have been produced for a certain number of generations").
    """
    finite = [r for r in records if math.isfinite(r.fitness)]
    if not finite:
        return area_stall + 1, timing_stall + 1, transition_stall + 1
    best = min(finite, key=lambda r: r.fitness)
    return (
        area_stall + 1 if best.area_violating_pes else 0,
        timing_stall + 1 if best.timing_violating_modes else 0,
        transition_stall + 1 if best.transition_violating else 0,
    )


def reset_stalls(
    config: SynthesisConfig,
    area_stall: int,
    timing_stall: int,
    transition_stall: int,
) -> Tuple[int, int, int]:
    """Zero each streak that just fired its repair mutation."""
    if area_stall >= config.stall_generations:
        area_stall = 0
    if timing_stall >= config.stall_generations:
        timing_stall = 0
    if transition_stall >= config.stall_generations:
        transition_stall = 0
    return area_stall, timing_stall, transition_stall


def apply_improvements(
    config: SynthesisConfig,
    population: List[MappingString],
    records: Sequence[EvalRecord],
    rng: random.Random,
    area_stall: int,
    timing_stall: int,
    transition_stall: int,
    best_genome: Optional[MappingString] = None,
) -> List[MappingString]:
    """The paper's improvement strategies, applied in place.

    Shut-down mutations rewrite a configured fraction of the
    non-elite population every generation; the area / timing /
    transition repairs fire only once their stall streak reaches
    ``config.stall_generations``.
    """
    elite = config.elite_count

    if config.enable_shutdown_improvement:
        for index in range(elite, len(population)):
            if rng.random() < config.shutdown_mutation_rate:
                improved = mutations.shutdown_improvement(
                    population[index],
                    rng,
                    config.bias_shutdown_by_probability,
                )
                if improved is not None:
                    population[index] = improved

    def repair_indices() -> List[int]:
        count = max(
            1, int(config.repair_fraction * (len(population) - elite))
        )
        candidates = list(range(elite, len(population)))
        rng.shuffle(candidates)
        return candidates[:count]

    if (
        config.enable_area_improvement
        and area_stall >= config.stall_generations
    ):
        violating = sorted(
            {
                pe
                for record in records
                for pe in record.area_violating_pes
            }
        )
        targets = repair_indices()
        for index in targets:
            improved = mutations.area_improvement(
                population[index], rng, violating
            )
            if improved is not None:
                population[index] = improved
        # Repairing the current best is the most promising move: it
        # is the candidate whose penalised fitness dominates the
        # search despite its violation.
        if best_genome is not None and targets:
            # A gentle trim: typically only a few cores overflow.
            repaired_best = mutations.area_improvement(
                best_genome, rng, violating, move_fraction=0.15
            )
            if repaired_best is not None:
                population[targets[0]] = repaired_best

    if (
        config.enable_timing_improvement
        and timing_stall >= config.stall_generations
    ):
        violating_modes = sorted(
            {
                mode
                for record in records
                for mode in record.timing_violating_modes
            }
        )
        for index in repair_indices():
            improved = mutations.timing_improvement(
                population[index], rng, violating_modes
            )
            if improved is not None:
                population[index] = improved

    if (
        config.enable_transition_improvement
        and transition_stall >= config.stall_generations
    ):
        for index in repair_indices():
            improved = mutations.transition_improvement(
                population[index], rng, ()
            )
            if improved is not None:
                population[index] = improved

    return population


def exchange_pass(
    problem: Problem,
    current: MappingString,
    current_fitness: float,
    budget: int,
    rng: random.Random,
    evaluate: EvaluateFn,
) -> Tuple[MappingString, float, int, bool]:
    """One pass of cross-mode type exchanges on hardware components.

    For every hardware PE, tries replacing one resident task type (all
    its tasks, in every mode, moved to a software PE) with one absent
    supported type (all its tasks moved in).  Returns the possibly
    improved genome, its fitness, evaluations spent and whether
    anything improved.
    """
    software = [pe.name for pe in problem.architecture.software_pes()]
    if not software:
        return current, current_fitness, 0, False
    spent = 0
    improved = False

    def cross_mode_replacements(
        task_type: str,
        target: str,
        only_from: Optional[str] = None,
    ) -> Dict[int, str]:
        """Gene changes moving a type to ``target`` in every mode.

        With ``only_from`` set, only tasks currently on that PE move —
        evicting a type from one component must not disturb its
        placements elsewhere.
        """
        changes: Dict[int, str] = {}
        for mode in problem.omsm.modes:
            for task in mode.task_graph.tasks_of_type(task_type):
                index = current.gene_index(mode.name, task.name)
                gene = current.genes[index]
                if gene == target:
                    continue
                if only_from is not None and gene != only_from:
                    continue
                changes[index] = target
        return changes

    for pe in problem.architecture.hardware_pes():
        resident_types = {
            task.task_type
            for mode in problem.omsm.modes
            for task in mode.task_graph
            if current.pe_of(mode.name, task.name) == pe.name
        }
        resident = sorted(resident_types)
        supported = [
            t
            for t in problem.technology.task_types()
            if problem.technology.supports(t, pe.name)
            and t in problem.omsm.all_task_types()
        ]
        absent = [t for t in supported if t not in resident]
        rng.shuffle(resident)
        rng.shuffle(absent)
        for type_out in resident:
            if spent >= budget:
                return current, current_fitness, spent, improved
            out_sw = [
                s
                for s in software
                if problem.technology.supports(type_out, s)
            ]
            if not out_sw:
                continue
            for type_in in absent:
                if spent >= budget:
                    return current, current_fitness, spent, improved
                changes = cross_mode_replacements(
                    type_out, out_sw[0], only_from=pe.name
                )
                changes.update(
                    cross_mode_replacements(type_in, pe.name)
                )
                if not changes:
                    continue
                candidate = current.with_genes(changes)
                record = evaluate(candidate)
                spent += 1
                if record.fitness < current_fitness - 1e-15:
                    current = candidate
                    current_fitness = record.fitness
                    improved = True
                    break
    return current, current_fitness, spent, improved


def local_search(
    problem: Problem,
    config: SynthesisConfig,
    genome: MappingString,
    rng: random.Random,
    evaluate: EvaluateFn,
) -> MappingString:
    """First-improvement descent on the best genome, two move kinds.

    Alternates (a) *group moves* — all tasks of one (mode, type) onto
    one PE, the granularity at which hardware cores are paid for — and
    (b) single-gene moves.  Improvements are accepted immediately and
    the pass continues; the search stops when neither move kind
    improves or the evaluation budget
    (``local_search_budget_factor × neighbourhood size``) is spent.
    """
    current = genome
    current_fitness = evaluate(current).fitness
    spent = 0

    group_moves: List[Tuple[str, str, str]] = []
    for mode in problem.omsm.modes:
        for task_type in sorted(mode.task_graph.task_types()):
            for pe in problem.technology.candidate_pes(task_type):
                group_moves.append((mode.name, task_type, pe))

    # The budget scales with the size of the *neighbourhood* (one full
    # pass over single-gene moves and group moves), not just the genome
    # length — on small problems the neighbourhood is several times the
    # gene count and a genome-length budget would end the search before
    # a single complete pass.
    single_moves = sum(
        len(current.candidates_at(index)) - 1
        for index in range(len(current))
    )
    budget = int(
        config.local_search_budget_factor
        * max(1, single_moves + len(group_moves))
    )

    improved = True
    while improved and spent < budget:
        improved = False

        # Phase 0: knapsack exchanges — swap which task types own area
        # on a hardware component, across all modes at once.  Area-full
        # components are local optima for every smaller move kind; only
        # an exchange escapes them.
        current, current_fitness, used, improved_swap = exchange_pass(
            problem, current, current_fitness, budget - spent, rng, evaluate
        )
        spent += used
        improved = improved or improved_swap

        # Phase a: coordinated type-group moves.
        rng.shuffle(group_moves)
        for mode_name, task_type, pe in group_moves:
            if spent >= budget:
                break
            graph = problem.omsm.mode(mode_name).task_graph
            replacements = {
                current.gene_index(mode_name, task.name): pe
                for task in graph.tasks_of_type(task_type)
                if current.pe_of(mode_name, task.name) != pe
            }
            if not replacements:
                continue
            candidate = current.with_genes(replacements)
            record = evaluate(candidate)
            spent += 1
            if record.fitness < current_fitness - 1e-15:
                current = candidate
                current_fitness = record.fitness
                improved = True

        # Phase b: single-gene refinements.
        order = list(range(len(current)))
        rng.shuffle(order)
        for index in order:
            if spent >= budget:
                break
            gene = current.genes[index]
            for alternative in current.candidates_at(index):
                if alternative == gene:
                    continue
                candidate = current.with_gene(index, alternative)
                record = evaluate(candidate)
                spent += 1
                if record.fitness < current_fitness - 1e-15:
                    current = candidate
                    current_fitness = record.fitness
                    improved = True
                    break
                if spent >= budget:
                    break
    return current
