"""Co-synthesis of energy-efficient multi-mode systems (the outer loop).

The outer loop (paper Fig. 4) is a genetic algorithm over multi-mode
mapping strings.  Each candidate is decoded by the
:mod:`~repro.synthesis.evaluator`: mobility analysis, core allocation,
per-mode communication mapping + scheduling (the inner loop), optional
dynamic voltage scaling, and finally the power/penalty fitness of
:mod:`~repro.synthesis.fitness`.  Four problem-specific improvement
mutations (:mod:`~repro.synthesis.mutations`) steer the search toward
component shut-down and away from area/timing/transition infeasibility.
"""

from repro.synthesis.config import SynthesisConfig
from repro.synthesis.cosynthesis import (
    MultiModeSynthesizer,
    SynthesisResult,
    synthesize,
)
from repro.synthesis.evaluator import evaluate_mapping
from repro.synthesis.fitness import FitnessWeights, mapping_fitness
from repro.synthesis.state import GAState

__all__ = [
    "FitnessWeights",
    "GAState",
    "MultiModeSynthesizer",
    "SynthesisConfig",
    "SynthesisResult",
    "evaluate_mapping",
    "mapping_fitness",
    "synthesize",
]
