"""The four problem-specific improvement mutations (Fig. 4, lines 19–22).

Beyond standard gene mutation, the paper introduces four directed
operators that push the GA out of low-quality or infeasible regions:

* **Shut-down improvement** — pick a mode and a *non-essential* PE
  (one whose tasks all have alternative implementations elsewhere) and
  move every task of that mode away from it, enabling the PE to be
  switched off during the mode.
* **Area improvement** — after a streak of area-infeasible generations,
  move hardware tasks onto software processors.
* **Timing improvement** — after a streak of timing-infeasible
  generations, move software tasks onto faster hardware.
* **Transition improvement** — after a streak of transition-violating
  generations, move tasks away from the FPGAs causing reconfiguration
  overruns.

All operators return a new genome (or ``None`` when not applicable) and
never raise on unlucky random picks — the GA simply keeps the original
individual then.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.architecture.processing_element import PEKind
from repro.mapping.encoding import MappingString
from repro.problem import Problem


def _pick_mode(
    problem: Problem, rng: random.Random, bias_by_probability: bool
) -> str:
    modes = problem.omsm.modes
    if bias_by_probability:
        weights = [max(m.probability, 1e-9) for m in modes]
        return rng.choices([m.name for m in modes], weights=weights, k=1)[0]
    return rng.choice([m.name for m in modes])


def type_group_move(
    genome: MappingString,
    rng: random.Random,
) -> Optional[MappingString]:
    """Move *all* tasks of one (mode, task type) onto one PE.

    Hardware cost is paid per allocated core, i.e. per task type — a
    single re-mapped task carries the full core area while harvesting
    only its own energy saving.  Profitable moves therefore involve
    every task of a type at once; this operator proposes exactly such
    coordinated moves, which single-gene mutation and crossover only
    assemble slowly.
    """
    problem = genome.problem
    mode = problem.omsm.mode(_pick_mode(problem, rng, False))
    types = sorted(mode.task_graph.task_types())
    if not types:
        return None
    task_type = rng.choice(types)
    candidates = problem.technology.candidate_pes(task_type)
    if len(candidates) < 2:
        return None
    target = rng.choice(candidates)
    replacements: Dict[int, str] = {}
    for task in mode.task_graph.tasks_of_type(task_type):
        index = genome.gene_index(mode.name, task.name)
        if genome.genes[index] != target:
            replacements[index] = target
    if not replacements:
        return None
    return genome.with_genes(replacements)


def shutdown_improvement(
    genome: MappingString,
    rng: random.Random,
    bias_by_probability: bool = True,
) -> Optional[MappingString]:
    """Vacate one non-essential PE during one mode (lines 19).

    A PE is non-essential for a mode when every task of the mode mapped
    onto it has at least one alternative candidate PE.  All such tasks
    are re-mapped randomly to other candidates, so the PE can be shut
    down for the whole mode.
    """
    problem = genome.problem
    mode_name = _pick_mode(problem, rng, bias_by_probability)
    mapping = genome.mode_mapping(mode_name)

    occupied: Dict[str, List[str]] = {}
    for task, pe in mapping.items():
        occupied.setdefault(pe, []).append(task)

    non_essential: List[str] = []
    for pe, tasks in occupied.items():
        if all(
            len(
                [
                    c
                    for c in genome.candidates_at(
                        genome.gene_index(mode_name, task)
                    )
                    if c != pe
                ]
            )
            > 0
            for task in tasks
        ):
            non_essential.append(pe)
    if not non_essential:
        return None
    target = rng.choice(sorted(non_essential))

    replacements: Dict[int, str] = {}
    for task in occupied[target]:
        index = genome.gene_index(mode_name, task)
        alternatives = [
            c for c in genome.candidates_at(index) if c != target
        ]
        replacements[index] = rng.choice(alternatives)
    return genome.with_genes(replacements)


def area_improvement(
    genome: MappingString,
    rng: random.Random,
    violating_pes: Sequence[str],
    move_fraction: float = 0.5,
) -> Optional[MappingString]:
    """Move hardware tasks to software processors (line 20)."""
    problem = genome.problem
    software = {pe.name for pe in problem.architecture.software_pes()}
    if not software:
        return None
    hardware_targets = set(violating_pes) or {
        pe.name for pe in problem.architecture.hardware_pes()
    }

    replacements: Dict[int, str] = {}
    for index, gene in enumerate(genome.genes):
        if gene not in hardware_targets:
            continue
        if rng.random() >= move_fraction:
            continue
        sw_candidates = [
            c for c in genome.candidates_at(index) if c in software
        ]
        if sw_candidates:
            replacements[index] = rng.choice(sw_candidates)
    if not replacements:
        return None
    return genome.with_genes(replacements)


def timing_improvement(
    genome: MappingString,
    rng: random.Random,
    violating_modes: Sequence[str],
    move_fraction: float = 0.5,
) -> Optional[MappingString]:
    """Move software tasks to faster hardware implementations (line 21)."""
    problem = genome.problem
    software = {pe.name for pe in problem.architecture.software_pes()}
    modes = set(violating_modes) or set(problem.omsm.mode_names)

    replacements: Dict[int, str] = {}
    for mode in problem.omsm.modes:
        if mode.name not in modes:
            continue
        for task in mode.task_graph:
            index = genome.gene_index(mode.name, task.name)
            gene = genome.genes[index]
            if gene not in software:
                continue
            if rng.random() >= move_fraction:
                continue
            current_time = problem.technology.implementation(
                task.task_type, gene
            ).exec_time
            faster = [
                c
                for c in genome.candidates_at(index)
                if c not in software
                and problem.technology.implementation(
                    task.task_type, c
                ).exec_time
                < current_time
            ]
            if faster:
                replacements[index] = rng.choice(faster)
    if not replacements:
        return None
    return genome.with_genes(replacements)


def transition_improvement(
    genome: MappingString,
    rng: random.Random,
    violating_fpgas: Sequence[str],
    move_fraction: float = 0.5,
) -> Optional[MappingString]:
    """Move tasks away from FPGAs that overrun transition limits (line 22)."""
    problem = genome.problem
    fpgas = set(violating_fpgas) or {
        pe.name
        for pe in problem.architecture.hardware_pes()
        if pe.kind is PEKind.FPGA
    }
    if not fpgas:
        return None

    replacements: Dict[int, str] = {}
    for index, gene in enumerate(genome.genes):
        if gene not in fpgas:
            continue
        if rng.random() >= move_fraction:
            continue
        alternatives = [
            c for c in genome.candidates_at(index) if c not in fpgas
        ]
        if alternatives:
            replacements[index] = rng.choice(alternatives)
    if not replacements:
        return None
    return genome.with_genes(replacements)
