"""Decoding and evaluating one mapping candidate (Fig. 4, lines 3–14).

For a given multi-mode mapping string the evaluator performs, in order:
mobility computation, hardware core allocation, area and transition
accounting, per-mode communication mapping + list scheduling (the inner
loop), optional dynamic voltage scaling, power estimation with component
shut-down, and finally the penalty fitness.  The result is a complete
:class:`~repro.mapping.implementation.Implementation`.

A mapping can be *communication-infeasible* (two communicating tasks on
PEs that share no link).  Such candidates evaluate to ``None`` and the
GA assigns them an infinite fitness.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.errors import SchedulingError
from repro.dvs.pv_dvs import scale_schedule, uniform_scale_schedule
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.mapping.implementation import Implementation, ImplementationMetrics
from repro.power.energy_model import average_power, power_breakdown
from repro.problem import Problem
from repro.scheduling.list_scheduler import schedule_mode
from repro.scheduling.mobility import compute_mobilities
from repro.scheduling.schedule import ModeSchedule
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.fitness import FitnessWeights, mapping_fitness


def evaluate_mapping(
    problem: Problem,
    mapping: MappingString,
    config: SynthesisConfig,
) -> Optional[Implementation]:
    """Decode, schedule, scale and score one mapping candidate.

    Returns ``None`` for communication-infeasible mappings; otherwise an
    :class:`Implementation` whose ``metrics.fitness`` reflects the
    configuration's probability policy while ``metrics.average_power``
    is always the true-probability Equation (1) value.
    """
    technology = problem.technology

    mobilities = {}
    for mode in problem.omsm.modes:
        mobilities[mode.name] = compute_mobilities(
            mode,
            lambda task, _mode=mode: technology.implementation(
                _mode.task_graph.task(task).task_type,
                mapping.pe_of(_mode.name, task),
            ).exec_time,
        )

    cores = allocate_cores(problem, mapping, mobilities)
    area_violations = cores.area_violations()
    transition_violations = cores.transition_violations()

    schedules: Dict[str, ModeSchedule] = {}
    timing_violations: Dict[str, Dict[str, float]] = {}
    for mode in problem.omsm.modes:
        try:
            if config.inner_loop_iterations > 0:
                from repro.scheduling.priority_search import (
                    refine_schedule,
                )

                schedule = refine_schedule(
                    problem,
                    mode,
                    mapping.mode_mapping(mode.name),
                    cores,
                    iterations=config.inner_loop_iterations,
                )
            else:
                schedule = schedule_mode(
                    problem,
                    mode,
                    mapping.mode_mapping(mode.name),
                    cores,
                    mobilities[mode.name],
                )
        except SchedulingError:
            return None
        if config.dvs is DvsMethod.GRADIENT:
            schedule = scale_schedule(
                problem,
                mode,
                schedule,
                shared_rail=config.dvs_shared_rail,
            )
        elif config.dvs is DvsMethod.UNIFORM:
            schedule = uniform_scale_schedule(problem, mode, schedule)
        schedules[mode.name] = schedule
        violations = schedule.timing_violations(mode)
        if violations:
            timing_violations[mode.name] = violations

    dynamic, static = power_breakdown(problem, schedules)
    true_power = average_power(problem, schedules)
    if config.use_probabilities:
        optimised_power = true_power
    else:
        optimised_power = average_power(
            problem,
            schedules,
            problem.omsm.uniform_probability_vector(),
        )

    weights = FitnessWeights(
        area=config.area_weight,
        transition=config.transition_weight,
        timing=config.timing_weight,
    )
    fitness = mapping_fitness(
        problem,
        optimised_power,
        timing_violations,
        area_violations,
        transition_violations,
        weights,
    )

    metrics = ImplementationMetrics(
        average_power=true_power,
        dynamic_power=dynamic,
        static_power=static,
        timing_violation=timing_violations,
        area_violation=area_violations,
        transition_violation=transition_violations,
        fitness=fitness,
    )
    return Implementation(
        problem=problem,
        mapping=mapping,
        cores=cores,
        schedules=schedules,
        metrics=metrics,
    )
