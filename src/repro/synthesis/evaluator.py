"""Decoding and evaluating one mapping candidate (Fig. 4, lines 3–14).

For a given multi-mode mapping string the evaluator performs, in order:
mobility computation, hardware core allocation, area and transition
accounting, per-mode communication mapping + list scheduling (the inner
loop), optional dynamic voltage scaling, power estimation with component
shut-down, and finally the penalty fitness.  The result is a complete
:class:`~repro.mapping.implementation.Implementation`.

A mapping can be *communication-infeasible* (two communicating tasks on
PEs that share no link).  Such candidates evaluate to ``None`` and the
GA assigns them an infinite fitness.

Evaluation is the synthesis hot path: every phase is timed into the
process-global :data:`~repro.engine.profile.PROFILER` and all
mapping-independent data comes from a prebuilt
:class:`~repro.engine.decode_cache.DecodeContext` (resolved per problem
unless the caller threads one through, e.g. a pool worker).  The cached
fast paths produce bit-identical results to the legacy recompute-per-
candidate paths, which remain reachable via
``SynthesisConfig.decode_cache = False`` for ablation benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import SchedulingError
from repro.engine.decode_cache import DecodeContext, context_for
from repro.engine.profile import PROFILER
from repro.dvs.pv_dvs import scale_schedule, uniform_scale_schedule
from repro.dvs._pv_dvs_reference import (
    reference_scale_schedule,
    reference_uniform_scale_schedule,
)
from repro.mapping.cores import allocate_cores
from repro.mapping.encoding import MappingString
from repro.mapping.implementation import Implementation, ImplementationMetrics
from repro.power.energy_model import average_power, power_breakdown
from repro.problem import Problem
from repro.scheduling.list_scheduler import schedule_mode
from repro.scheduling.mobility import compute_mobilities
from repro.scheduling.schedule import ModeSchedule
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.fitness import FitnessWeights, mapping_fitness

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eval.cache import ModeResultCache


def evaluate_mapping(
    problem: Problem,
    mapping: MappingString,
    config: SynthesisConfig,
    context: Optional[DecodeContext] = None,
    cache: Optional["ModeResultCache"] = None,
) -> Optional[Implementation]:
    """Decode, schedule, scale and score one mapping candidate.

    Returns ``None`` for communication-infeasible mappings; otherwise an
    :class:`Implementation` whose ``metrics.fitness`` reflects the
    configuration's probability policy while ``metrics.average_power``
    is always the true-probability Equation (1) value.

    ``context`` supplies the prebuilt mapping-independent decode tables;
    when omitted it is resolved (and memoised) per problem, unless the
    configuration disables the decode cache entirely.

    With ``config.mode_cache`` enabled (the default) the candidate runs
    through the staged incremental pipeline instead, which serves
    per-mode stage results from a bounded cache; the monolithic body
    below is the bit-identity oracle it is tested against.
    """
    if config.mode_cache:
        # Function-level import: repro.eval imports synthesis.config, so
        # a module-level import here would cycle when the entry point is
        # ``import repro.eval``.
        from repro.eval.pipeline import evaluate_mapping_incremental

        return evaluate_mapping_incremental(
            problem, mapping, config, context=context, cache=cache
        )
    if context is None and config.decode_cache:
        context = context_for(problem)
    technology = problem.technology

    mode_mappings: Dict[str, Dict[str, str]] = {}
    mobilities = {}
    for mode in problem.omsm.modes:
        # Mode-attributed timing: the per-mode buckets of each phase
        # sum exactly to its aggregate (see repro.engine.profile).
        with PROFILER.phase("mobility", mode=mode.name):
            mode_mappings[mode.name] = mapping.mode_mapping(mode.name)
            if context is not None:
                mobilities[mode.name] = context.compute_mobilities(
                    mode.name, mode_mappings[mode.name]
                )
            else:
                mobilities[mode.name] = compute_mobilities(
                    mode,
                    lambda task, _mode=mode: technology.implementation(
                        _mode.task_graph.task(task).task_type,
                        mapping.pe_of(_mode.name, task),
                    ).exec_time,
                )

    with PROFILER.phase("cores"):
        cores = allocate_cores(
            problem,
            mapping,
            mobilities,
            context=context,
            mode_mappings=mode_mappings,
        )
        area_violations = cores.area_violations()
        transition_violations = cores.transition_violations()

    schedules: Dict[str, ModeSchedule] = {}
    timing_violations: Dict[str, Dict[str, float]] = {}
    for mode in problem.omsm.modes:
        with PROFILER.phase("schedule", mode=mode.name):
            try:
                if config.inner_loop_iterations > 0:
                    from repro.scheduling.priority_search import (
                        refine_schedule,
                    )

                    schedule = refine_schedule(
                        problem,
                        mode,
                        mode_mappings[mode.name],
                        cores,
                        iterations=config.inner_loop_iterations,
                    )
                else:
                    schedule = schedule_mode(
                        problem,
                        mode,
                        mode_mappings[mode.name],
                        cores,
                        mobilities[mode.name],
                        context=context,
                    )
            except SchedulingError:
                return None
        if config.dvs is not DvsMethod.NONE:
            with PROFILER.phase("dvs", mode=mode.name):
                if config.dvs is DvsMethod.GRADIENT:
                    if config.decode_cache:
                        schedule = scale_schedule(
                            problem,
                            mode,
                            schedule,
                            shared_rail=config.dvs_shared_rail,
                            context=context,
                            vector=config.vector_dvs,
                            warm_start=config.dvs_warm_start,
                        )
                    else:
                        schedule = reference_scale_schedule(
                            problem,
                            mode,
                            schedule,
                            shared_rail=config.dvs_shared_rail,
                        )
                elif config.decode_cache:
                    schedule = uniform_scale_schedule(
                        problem, mode, schedule, context=context
                    )
                else:
                    schedule = reference_uniform_scale_schedule(
                        problem, mode, schedule
                    )
        schedules[mode.name] = schedule
        violations = schedule.timing_violations(
            mode,
            deadlines=(
                context.modes[mode.name].deadlines
                if context is not None
                else None
            ),
        )
        if violations:
            timing_violations[mode.name] = violations

    with PROFILER.phase("power"):
        dynamic, static = power_breakdown(problem, schedules)
        true_power = average_power(problem, schedules)
        if config.use_probabilities:
            optimised_power = true_power
        else:
            optimised_power = average_power(
                problem,
                schedules,
                problem.omsm.uniform_probability_vector(),
            )

        weights = FitnessWeights(
            area=config.area_weight,
            transition=config.transition_weight,
            timing=config.timing_weight,
        )
        fitness = mapping_fitness(
            problem,
            optimised_power,
            timing_violations,
            area_violations,
            transition_violations,
            weights,
        )

    metrics = ImplementationMetrics(
        average_power=true_power,
        dynamic_power=dynamic,
        static_power=static,
        timing_violation=timing_violations,
        area_violation=area_violations,
        transition_violation=transition_violations,
        fitness=fitness,
    )
    return Implementation(
        problem=problem,
        mapping=mapping,
        cores=cores,
        schedules=schedules,
        metrics=metrics,
    )
