"""Checkpointable GA loop state.

A :class:`GAState` captures everything the
:class:`~repro.synthesis.cosynthesis.MultiModeSynthesizer` needs to
continue a run *bit-identically* after a process death: the RNG state,
the current population, the best-so-far genome and fitness, the
stall/stagnation counters and the fitness history.  The snapshot is
taken at a generation boundary (after breeding and the improvement
mutations, i.e. the state from which generation ``generation + 1``
would be evaluated), so resuming replays the exact remaining
generations the uninterrupted run would have executed.

Evaluation caches are deliberately *not* part of the state: evaluation
is a pure function of the genome, so an empty cache after resume only
re-spends CPU time — it cannot change any result.  The
``evaluations`` counter carries across so aggregate statistics stay
meaningful.

Everything is JSON-serialisable via :meth:`GAState.to_dict` /
:meth:`GAState.from_dict`; the Mersenne-Twister state tuple is encoded
as nested lists and restored exactly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SynthesisError

#: Schema version of serialised snapshots; bump on incompatible change.
STATE_VERSION = 1


def encode_rng_state(state: Tuple[Any, ...]) -> List[Any]:
    """``random.Random.getstate()`` → a JSON-safe nested list."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(data: Sequence[Any]) -> Tuple[Any, ...]:
    """The inverse of :func:`encode_rng_state` (exact round-trip)."""
    version, internal, gauss_next = data
    return (version, tuple(internal), gauss_next)


@dataclass
class GAState:
    """One resumable snapshot of the synthesis loop.

    ``generation`` is the index of the last *completed* generation;
    resuming continues with generation ``generation + 1``.
    ``best_genes`` is ``None`` while no evaluable candidate has been
    seen (then ``best_fitness`` is ``+inf``).
    """

    generation: int
    rng_state: Tuple[Any, ...]
    population: List[Tuple[str, ...]]
    best_genes: Optional[Tuple[str, ...]]
    best_fitness: float
    stagnant: int
    area_stall: int
    timing_stall: int
    transition_stall: int
    history: List[float] = field(default_factory=list)
    evaluations: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view (infinities encoded as ``None``)."""
        return {
            "version": STATE_VERSION,
            "generation": self.generation,
            "rng_state": encode_rng_state(self.rng_state),
            "population": [list(genes) for genes in self.population],
            "best_genes": (
                list(self.best_genes)
                if self.best_genes is not None
                else None
            ),
            "best_fitness": (
                self.best_fitness
                if math.isfinite(self.best_fitness)
                else None
            ),
            "stagnant": self.stagnant,
            "area_stall": self.area_stall,
            "timing_stall": self.timing_stall,
            "transition_stall": self.transition_stall,
            "history": [
                value if math.isfinite(value) else None
                for value in self.history
            ],
            "evaluations": self.evaluations,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GAState":
        version = data.get("version")
        if version != STATE_VERSION:
            raise SynthesisError(
                f"unsupported GA state version {version!r} "
                f"(expected {STATE_VERSION})"
            )
        best_fitness = data["best_fitness"]
        return cls(
            generation=int(data["generation"]),
            rng_state=decode_rng_state(data["rng_state"]),
            population=[
                tuple(genes) for genes in data["population"]
            ],
            best_genes=(
                tuple(data["best_genes"])
                if data["best_genes"] is not None
                else None
            ),
            best_fitness=(
                float(best_fitness)
                if best_fitness is not None
                else math.inf
            ),
            stagnant=int(data["stagnant"]),
            area_stall=int(data["area_stall"]),
            timing_stall=int(data["timing_stall"]),
            transition_stall=int(data["transition_stall"]),
            history=[
                float(value) if value is not None else math.inf
                for value in data["history"]
            ],
            evaluations=int(data["evaluations"]),
        )

    def restore_rng(self) -> random.Random:
        """A fresh ``random.Random`` positioned at the saved state."""
        rng = random.Random()
        rng.setstate(self.rng_state)
        return rng
