"""The generation driver: a declarative loop over pipeline stages.

This is the thin core that used to be the monolithic
``MultiModeSynthesizer._run``.  Each generation is an explicit stage
sequence — evaluate → assess → (restart) → speculate → breed →
improve — where every stage is a pure function from
:mod:`repro.synthesis.operators` / :mod:`repro.synthesis.improvements`
and evaluation goes through a pluggable
:class:`~repro.engine.backend.EvaluationBackend`.  The driver knows
*what* to evaluate and in which order; it never knows where the
evaluation runs.

Speculation slots into the one place the loop structure allows it:
once a generation's records have landed (and any restart has been
re-evaluated), the next batch is fully determined by pure stages over
known inputs — so the driver predicts it on a cloned RNG
(:mod:`repro.synthesis.speculation`) and offers it to the backend
*before* breeding for real.  By the time the next
:meth:`evaluate_population` call submits the real batch, the async
pool has been computing it for the whole breeding window.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.backend import EvaluationBackend
from repro.engine.parallel import evaluate_inprocess
from repro.engine.profile import PROFILER, PerfStats
from repro.engine.records import EvalRecord, record_from_implementation
from repro.errors import SynthesisError
from repro.mapping.encoding import MappingString
from repro.mapping.implementation import Implementation
from repro.obs.metrics import REGISTRY
from repro.problem import Problem
from repro.synthesis import improvements, operators, speculation
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.evaluator import evaluate_mapping
from repro.synthesis.state import GAState


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run.

    ``best`` is the fully decoded best implementation found; ``history``
    records the best fitness after every generation; ``cpu_time`` is the
    wall-clock optimisation time in seconds (the quantity the paper's
    "CPU time" columns report); ``perf`` carries the per-phase timing
    and cache statistics collected by the evaluation engine;
    ``mode_powers`` is the stable per-mode power breakdown (see below).
    """

    best: Implementation
    generations: int
    evaluations: int
    cpu_time: float
    history: List[float] = field(default_factory=list)
    perf: Optional[PerfStats] = None
    #: Per-mode power breakdown of the best candidate, in watts:
    #: ``{mode: {"dynamic": …, "static": …}}``.  This is the quantity
    #: Equation (1) is *linear* in — ``p̄(Ψ) = Σ_O (dyn_O + stat_O)·Ψ_O``
    #: for any probability vector — so persisting it lets any stored
    #: design be re-scored exactly under a new Ψ without re-simulation
    #: (the foundation of :mod:`repro.adaptive`).  Serialised by
    #: :func:`repro.io.result_to_dict` and carried on campaign
    #: ``job_finished`` events / result records.
    mode_powers: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.mode_powers and self.best is not None:
            metrics = self.best.metrics
            self.mode_powers = {
                mode: {
                    "dynamic": metrics.dynamic_power[mode],
                    "static": metrics.static_power[mode],
                }
                for mode in metrics.dynamic_power
            }

    @property
    def average_power(self) -> float:
        """True-probability Equation (1) power of the best candidate."""
        return self.best.metrics.average_power

    @property
    def is_feasible(self) -> bool:
        return self.best.metrics.is_feasible

    def mode_power(self, mode_name: str) -> float:
        """Total (dynamic + static) power of one mode, in watts."""
        entry = self.mode_powers[mode_name]
        return entry["dynamic"] + entry["static"]


class GenerationDriver:
    """Runs the GA stage pipeline for one problem instance.

    Owns the per-genome result cache and the evaluation counters; one
    driver may execute several runs (the cache persists across them,
    which warm-started re-synthesis relies on).
    """

    def __init__(self, problem: Problem, config: SynthesisConfig) -> None:
        self.problem = problem
        self.config = config
        self.genome_cache: Dict[MappingString, EvalRecord] = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    # Evaluation with caching
    # ------------------------------------------------------------------

    def evaluate_one(self, genome: MappingString) -> EvalRecord:
        """Single-candidate evaluation (the local-search hook)."""
        record = self.genome_cache.get(genome)
        if record is not None:
            self.cache_hits += 1
            return record
        self.evaluations += 1
        implementation = evaluate_mapping(self.problem, genome, self.config)
        record = record_from_implementation(implementation)
        self.genome_cache[genome] = record
        return record

    def evaluate_population(
        self,
        population: Sequence[MappingString],
        backend: Optional[EvaluationBackend],
    ) -> List[EvalRecord]:
        """Evaluate one generation: dedup, cache lookup, batch dispatch.

        Duplicate population slots (clones survive crossover and
        elitism routinely) collapse to one evaluation, cached genomes
        are answered without re-decoding, and only the remaining unique
        misses reach the backend — or the in-process helper when
        ``backend`` is ``None``.  Results are returned per slot, in
        population order.
        """
        unique: Dict[MappingString, None] = {}
        for genome in population:
            unique.setdefault(genome, None)
        self.dedup_hits += len(population) - len(unique)
        pending = [g for g in unique if g not in self.genome_cache]
        self.cache_hits += len(unique) - len(pending)
        if pending:
            if backend is not None:
                backend.submit(pending)
                results = backend.drain()
            else:
                results, _ = evaluate_inprocess(
                    self.problem, self.config, pending
                )
            self.evaluations += len(pending)
            for genome, record in zip(pending, results):
                self.genome_cache[genome] = record
        return [self.genome_cache[genome] for genome in population]

    # ------------------------------------------------------------------
    # Speculation
    # ------------------------------------------------------------------

    def _speculate_next(
        self,
        backend: EvaluationBackend,
        generation: int,
        mutation_rate: float,
        population: Sequence[MappingString],
        records: Sequence[EvalRecord],
        rng: random.Random,
        area_stall: int,
        timing_stall: int,
        transition_stall: int,
        best_genome: MappingString,
    ) -> None:
        """Predict the next batch and offer it to the backend early."""
        with PROFILER.phase("speculate"):
            predicted = speculation.predict_next_batch(
                self.config,
                mutation_rate,
                population,
                records,
                rng.getstate(),
                area_stall,
                timing_stall,
                transition_stall,
                best_genome,
            )
            # The batch the next evaluate_population() will actually
            # submit: deduplicated, minus everything already cached.
            batch = [
                g
                for g in dict.fromkeys(predicted)
                if g not in self.genome_cache
            ]
            if self.config.speculation_depth > 1:
                batch.extend(
                    speculation.heuristic_probes(
                        self.config,
                        mutation_rate,
                        predicted,
                        generation,
                        self.genome_cache,
                    )
                )
            if batch:
                backend.speculate(batch)

    # ------------------------------------------------------------------
    # The optimisation loop
    # ------------------------------------------------------------------

    def run(
        self,
        backend: EvaluationBackend,
        resume: Optional[GAState] = None,
        on_generation: Optional[Callable[[GAState], None]] = None,
    ) -> SynthesisResult:
        """Execute the GA over ``backend``; see the module docstring.

        ``resume`` continues a previous run from a
        :class:`~repro.synthesis.state.GAState` snapshot —
        bit-identically, because the snapshot carries the RNG state and
        the full population.  ``on_generation`` is called with a fresh
        snapshot after every completed generation; a checkpointing
        runtime persists (some of) these snapshots to disk.
        """
        config = self.config
        problem = self.problem
        started = time.perf_counter()
        profile_base = PROFILER.snapshot()
        metrics_base = REGISTRY.snapshot()
        mutation_rate = config.per_gene_mutation_rate
        if mutation_rate is None:
            mutation_rate = 1.0 / max(1, problem.genome_length())

        if resume is not None:
            # Continue exactly where the snapshot left off: the RNG
            # resumes mid-stream, the population is the bred-and-mutated
            # one the interrupted run would have evaluated next.
            rng = resume.restore_rng()
            population = [
                MappingString(problem, genes)
                for genes in resume.population
            ]
            if len(population) != config.population_size:
                raise SynthesisError(
                    f"resume snapshot has population "
                    f"{len(population)}, configuration expects "
                    f"{config.population_size}"
                )
            best_genome = (
                MappingString(problem, resume.best_genes)
                if resume.best_genes is not None
                else None
            )
            best_fitness = resume.best_fitness
            stagnant = resume.stagnant
            area_stall = resume.area_stall
            timing_stall = resume.timing_stall
            transition_stall = resume.transition_stall
            history = list(resume.history)
            self.evaluations = resume.evaluations
            generation = resume.generation
            start_generation = resume.generation + 1
        else:
            rng = random.Random(config.seed)
            population = operators.initial_population(
                problem, config, rng
            )
            best_genome = None
            best_fitness = math.inf
            stagnant = 0
            area_stall = 0
            timing_stall = 0
            transition_stall = 0
            history = []
            generation = 0
            start_generation = 1

        speculative = bool(config.speculative)

        for generation in range(
            start_generation, config.max_generations + 1
        ):
            generation_started = time.perf_counter()
            # --- evaluate ----------------------------------------------
            records = self.evaluate_population(population, backend)

            # --- assess ------------------------------------------------
            improved = False
            for genome, record in zip(population, records):
                if record.fitness < best_fitness - 1e-15:
                    best_fitness = record.fitness
                    best_genome = genome
                    improved = True
            stagnant = 0 if improved else stagnant + 1
            history.append(best_fitness)
            REGISTRY.inc("ga_generations_total")
            if math.isfinite(best_fitness):
                REGISTRY.set_gauge("ga_best_fitness", best_fitness)

            if stagnant >= config.convergence_generations:
                REGISTRY.observe(
                    "ga_generation_seconds",
                    time.perf_counter() - generation_started,
                )
                break

            # --- restart -----------------------------------------------
            if improvements.restart_due(config, stagnant):
                # Partial restart against premature convergence: the
                # worst half of the population is replaced with fresh
                # random/software-biased genomes (elites and the best
                # are never touched).
                population = improvements.partial_restart(
                    problem, population, records, rng
                )
                records = self.evaluate_population(population, backend)

            # --- speculate ---------------------------------------------
            # From here to the next evaluate_population() call, every
            # stage is a pure function of (population, records, rng) —
            # so the next batch is predictable *now*, and the backend
            # can be computing it while the parent breeds it for real.
            # The last generation's offspring are never evaluated, so
            # there is nothing to predict there.
            if (
                speculative
                and best_genome is not None
                and generation < config.max_generations
                and backend.supports_speculation
            ):
                self._speculate_next(
                    backend,
                    generation,
                    mutation_rate,
                    population,
                    records,
                    rng,
                    area_stall,
                    timing_stall,
                    transition_stall,
                    best_genome,
                )

            # --- breed -------------------------------------------------
            population = operators.breed_next(
                config, mutation_rate, population, records, rng
            )

            # --- improve -----------------------------------------------
            area_stall, timing_stall, transition_stall = (
                improvements.update_stalls(
                    records, area_stall, timing_stall, transition_stall
                )
            )
            population = improvements.apply_improvements(
                config,
                population,
                records,
                rng,
                area_stall,
                timing_stall,
                transition_stall,
                best_genome,
            )
            area_stall, timing_stall, transition_stall = (
                improvements.reset_stalls(
                    config, area_stall, timing_stall, transition_stall
                )
            )

            REGISTRY.observe(
                "ga_generation_seconds",
                time.perf_counter() - generation_started,
            )
            if on_generation is not None:
                # The end of the generation body is the one clean
                # resume point: the next-generation population is bred,
                # the counters are settled, and no RNG draw separates
                # this state from the top of the next iteration.
                on_generation(
                    GAState(
                        generation=generation,
                        rng_state=rng.getstate(),
                        population=[g.genes for g in population],
                        best_genes=(
                            best_genome.genes
                            if best_genome is not None
                            else None
                        ),
                        best_fitness=best_fitness,
                        stagnant=stagnant,
                        area_stall=area_stall,
                        timing_stall=timing_stall,
                        transition_stall=transition_stall,
                        history=list(history),
                        evaluations=self.evaluations,
                    )
                )

        # Anything still speculated (convergence struck, or deep probes
        # that never materialised) is abandoned before the serial
        # polish; draining it settles the accounting.
        backend.cancel_speculation()

        if best_genome is None:
            raise SynthesisError(
                "synthesis produced no evaluable candidate (architecture "
                "may be missing communication links)"
            )
        # --- local search ----------------------------------------------
        if config.local_search_budget_factor > 0:
            best_genome = improvements.local_search(
                problem, config, best_genome, rng, self.evaluate_one
            )
        best = evaluate_mapping(problem, best_genome, config)
        if best is None:  # pragma: no cover - guarded by fitness < inf
            raise SynthesisError("best candidate became infeasible")
        elapsed = time.perf_counter() - started
        perf = PerfStats(
            evaluations=self.evaluations,
            cache_hits=self.cache_hits,
            dedup_hits=self.dedup_hits,
            wall_time=elapsed,
            jobs=config.jobs,
        )
        perf.merge_phase_totals(PROFILER.delta_since(profile_base))
        backend.finalize_perf(perf)
        # Mode-result cache activity of this run: sum the labelled
        # counters (per mode, per stage) accumulated since the start.
        # Pool-worker activity is already folded in — chunk results
        # merge their metric deltas into this registry on arrival.
        metrics_delta = REGISTRY.delta_since(metrics_base).get("counters", {})
        for (metric_name, _labels), value in metrics_delta.items():
            if metric_name == "eval_mode_cache_hits_total":
                perf.mode_cache_hits += int(value)
            elif metric_name == "eval_mode_cache_misses_total":
                perf.mode_cache_misses += int(value)
            elif metric_name == "eval_mode_cache_evictions_total":
                perf.mode_cache_evictions += int(value)
        REGISTRY.inc("ga_runs_total")
        REGISTRY.inc("ga_cache_hits_total", self.cache_hits)
        REGISTRY.inc("ga_dedup_hits_total", self.dedup_hits)
        return SynthesisResult(
            best=best,
            generations=generation,
            evaluations=self.evaluations,
            cpu_time=elapsed,
            history=history,
            perf=perf,
        )
