"""Next-generation prediction for speculative evaluation.

While pool workers evaluate generation *g*, the parent runs selection,
crossover and the improvement mutations for generation *g + 1* — and
during *that* window the workers idle.  Speculative evaluation fills
the window by predicting the next population and dispatching it early.

The predictor exploits a structural property of the generation loop:
every stage downstream of evaluation (:func:`~repro.synthesis.
operators.breed_next`, :func:`~repro.synthesis.improvements.
update_stalls`, :func:`~repro.synthesis.improvements.
apply_improvements`) is a pure function of the evaluated records, the
current population and the RNG — and the next iteration's convergence
and restart decisions happen only *after* its evaluation.  So once a
generation's records have landed, cloning the RNG state (a *split
generator*: same seeded stream, zero draws consumed from the live one)
and replaying those stages yields **exactly** the population the driver
is about to breed.  Prediction accuracy is 1.0 by construction, and
determinism is untouched: speculated genomes are keyed by gene tuple,
so serving one is indistinguishable from evaluating it on demand.

Depths beyond 1 are heuristic: generation *g + 2* depends on records
that do not exist yet, so deeper probes are split-RNG mutations of the
predicted population — useful as pool-utilisation filler and mode-cache
warmers (their journal entries publish either way), discarded as
mispredictions if their genomes never materialise.  The probe RNG is
seeded from a string derived from ``(seed, generation, round)``, never
from the live stream, so probing cannot perturb results either.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Set, Tuple

from repro.engine.records import EvalRecord
from repro.mapping.encoding import MappingString
from repro.obs.metrics import REGISTRY
from repro.synthesis import improvements, operators
from repro.synthesis.config import SynthesisConfig


def predict_next_batch(
    config: SynthesisConfig,
    mutation_rate: float,
    population: Sequence[MappingString],
    records: Sequence[EvalRecord],
    rng_state: Tuple[object, ...],
    area_stall: int,
    timing_stall: int,
    transition_stall: int,
    best_genome: MappingString,
) -> List[MappingString]:
    """Replay the breeding pipeline on a cloned RNG: the exact next batch.

    ``rng_state`` is the live generator's state *before* the driver
    breeds; the replay consumes draws only from the clone.  Meters are
    suppressed for the duration — the real pass, which follows
    immediately, does the counting.
    """
    rng = random.Random()
    rng.setstate(rng_state)
    with REGISTRY.paused():
        predicted = operators.breed_next(
            config, mutation_rate, population, records, rng
        )
        stalls = improvements.update_stalls(
            records, area_stall, timing_stall, transition_stall
        )
        predicted = improvements.apply_improvements(
            config, predicted, records, rng, *stalls, best_genome
        )
    return predicted


def heuristic_probes(
    config: SynthesisConfig,
    mutation_rate: float,
    predicted: Sequence[MappingString],
    generation: int,
    known: Iterable[MappingString],
) -> List[MappingString]:
    """Deeper-than-one speculative candidates (cache warmers).

    One round per depth level beyond the exact layer, each mutating the
    predicted population under a string-seeded RNG (stable across
    processes and ``PYTHONHASHSEED``).  Genomes already predicted,
    cached or produced by an earlier round are skipped — re-evaluating
    them could never serve a hit.
    """
    seen: Set[MappingString] = set(predicted)
    seen.update(known)
    probes: List[MappingString] = []
    for level in range(2, config.speculation_depth + 1):
        rng = random.Random(
            f"speculate:{config.seed}:{generation}:{level}"
        )
        for genome in predicted:
            probe = genome.mutate(rng, mutation_rate)
            if probe in seen:
                continue
            seen.add(probe)
            probes.append(probe)
    return probes
