"""Configuration of the multi-mode co-synthesis GA."""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import SynthesisError


class DvsMethod(enum.Enum):
    """Which voltage-selection technique the inner loop applies."""

    NONE = "none"
    GRADIENT = "gradient"  # PV-DVS energy-gradient descent (proposed)
    UNIFORM = "uniform"    # naive single-stretch-factor baseline


@dataclass
class SynthesisConfig:
    """All knobs of :class:`~repro.synthesis.cosynthesis.MultiModeSynthesizer`.

    The defaults reflect the paper's setup: probability-aware fitness,
    moderate GA sizes, the four improvement strategies enabled, a 2 %
    shut-down mutation rate (the value the paper reports as working
    well) and area/transition penalty weights strong enough to push the
    search out of infeasible regions.

    Attributes
    ----------
    use_probabilities:
        ``True`` → the fitness weighs modes by their true execution
        probabilities (the proposed technique); ``False`` → uniform
        weights (the "probability neglecting" baseline of Tables 1–3).
    dvs:
        Voltage-selection method applied after scheduling each mode.
    dvs_shared_rail:
        ``True`` (paper Section 4.2): all cores of a hardware component
        share one supply rail, voltages are selected on the Fig. 5
        segment chain.  ``False``: idealised per-core rails (ablation).
    population_size / max_generations / convergence_generations:
        GA sizing; the run stops at ``max_generations`` or after
        ``convergence_generations`` without improvement of the best
        fitness.
    selection_pressure:
        Linear-scaling ranking pressure in ``[1, 2]``.
    tournament_size:
        Individuals drawn per tournament selection.
    crossover_rate / per_gene_mutation_rate:
        Standard genetic operator rates.  A ``None`` mutation rate
        defaults to ``1 / genome length``.
    elite_count:
        Best individuals copied unchanged into the next generation.
    group_mutation_rate:
        Probability per offspring of a *type group move*: all tasks of
        one (mode, type) re-mapped onto one PE.  Hardware cost is per
        core (= per type), so profitable moves are coordinated; this
        operator proposes them directly.
    shutdown_mutation_rate:
        Fraction of the population the shut-down improvement rewrites
        each generation (paper: 2 %).
    stall_generations:
        Number of consecutive generations in which *every* individual
        violates a constraint class before the corresponding repair
        mutation (area / timing / transition) fires.
    repair_fraction:
        Fraction of the population the repair mutations rewrite when
        they fire.
    bias_shutdown_by_probability:
        Pick the mode targeted by the shut-down improvement
        proportionally to its execution probability (ablation hook).
    area_weight / transition_weight / timing_weight:
        Penalty weights ``w_A``, ``w_R`` and the timing-penalty slope.
    local_search_budget_factor:
        After the GA converges, the best genome is polished by a
        first-improvement single-gene local search bounded to
        ``factor × genome length`` evaluations (0 disables).  On large
        genomes this reliably trims the last few cells of an area
        overflow the GA's crossover cannot hit exactly.
    inner_loop_iterations:
        Priority-refinement iterations of the list scheduler per mode
        and candidate (0 = plain ALAP priorities).  Improves schedule
        quality at a multiplicative inner-loop cost.
    jobs:
        Worker processes for population evaluation.  ``1`` (default)
        evaluates in-process; ``N > 1`` dispatches each generation's
        uncached genomes to a process pool.  Results are bit-identical
        to serial evaluation for any job count.
    async_pool:
        Dispatch pool batches through the work-stealing asynchronous
        evaluator (:mod:`repro.engine.async_pool`): workers pull
        individual genomes from a shared task queue, results merge as
        they land, and per-mode cache entries computed by one worker
        are published to all others so their
        :class:`~repro.eval.cache.ModeResultCache` copies stay
        coherent instead of diverging after fork.  ``False`` restores
        the per-generation barrier pool (static chunking, diverging
        COW caches) as an ablation oracle; both produce bit-identical
        results at any job count.  Only meaningful for ``jobs > 1``.
    speculative:
        Evaluate *predicted* next-generation genomes on the async pool
        while the parent breeds the real ones
        (:mod:`repro.synthesis.speculation`): the predictor replays the
        breeding stages on a cloned RNG, so at depth 1 the prediction
        is exact and every dispatched speculation is confirmed.
        Results are bit-identical with speculation on or off —
        ``False`` is the ablation oracle the differential fuzz pins —
        and the flag is inert without an async pool (``jobs=1``,
        ``async_pool=False``, or a pool that fell back).
    speculation_depth:
        How far ahead speculation reaches.  ``1`` (default) dispatches
        only the exactly predicted next batch.  Deeper levels add
        heuristic split-RNG mutations of the predicted population —
        pool filler and mode-cache warmers whose journal entries
        publish either way — at the cost of discarded work when the
        probes never materialise.
    pool_failure_mode:
        What a dead/unusable worker pool does to the run.
        ``"fallback"`` (default) degrades to in-process evaluation and
        records the failure; ``"raise"`` surfaces it as a
        :class:`~repro.errors.WorkerPoolError` so a supervising runtime
        (the campaign runner) can retry the job on a fresh pool.
    decode_cache:
        Use the prebuilt per-problem
        :class:`~repro.engine.decode_cache.DecodeContext` fast paths
        during candidate decoding.  ``False`` restores the legacy
        recompute-per-candidate paths (ablation/benchmark hook); both
        produce bit-identical results.
    mode_cache:
        Evaluate candidates through the staged incremental pipeline
        (:mod:`repro.eval`), memoising per-mode stage results in a
        bounded LRU :class:`~repro.eval.cache.ModeResultCache` so a
        candidate that only perturbs one mode pays for one mode's
        schedule instead of all of them.  ``False`` restores the
        monolithic :func:`~repro.synthesis.evaluator.evaluate_mapping`
        body (the ablation oracle); both produce bit-identical results.
    mode_cache_size:
        Entry capacity of each segment (prep / schedule) of the
        per-problem mode-result cache.
    vector_dvs:
        Run the PV-DVS gradient descent through the struct-of-arrays
        kernels (:mod:`repro.dvs._kernels`).  ``False`` restores the
        legacy object-graph descent loop (the ablation oracle); both
        produce bit-identical schedules.  Only meaningful for
        ``dvs=DvsMethod.GRADIENT`` with ``decode_cache=True`` (the
        reference paths ignore it).
    dvs_warm_start:
        Seed the vectorised descent with the closed-form continuous
        voltage relaxation, snapped (damped) to the discrete grid
        before the gradient loop.  Changes the descent path — results
        are no longer bit-identical to the cold start, but final energy
        is never worse on the fuzz corpus.  Requires ``vector_dvs``.
    seed:
        Seed of the synthesis RNG; runs are reproducible per seed.
    """

    use_probabilities: bool = True
    dvs: DvsMethod = DvsMethod.NONE
    dvs_shared_rail: bool = True

    population_size: int = 40
    max_generations: int = 150
    convergence_generations: int = 25
    selection_pressure: float = 1.8
    tournament_size: int = 2
    crossover_rate: float = 0.9
    per_gene_mutation_rate: Optional[float] = None
    elite_count: int = 2

    group_mutation_rate: float = 0.3

    enable_shutdown_improvement: bool = True
    enable_area_improvement: bool = True
    enable_timing_improvement: bool = True
    enable_transition_improvement: bool = True
    shutdown_mutation_rate: float = 0.02
    stall_generations: int = 4
    repair_fraction: float = 0.25
    bias_shutdown_by_probability: bool = True

    area_weight: float = 20.0
    transition_weight: float = 10.0
    timing_weight: float = 20.0

    local_search_budget_factor: float = 3.0
    inner_loop_iterations: int = 0

    jobs: int = 1
    async_pool: bool = True
    decode_cache: bool = True
    mode_cache: bool = True
    mode_cache_size: int = 4096
    vector_dvs: bool = True
    dvs_warm_start: bool = False
    speculative: bool = True
    speculation_depth: int = 1
    pool_failure_mode: str = "fallback"

    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise SynthesisError("population size must be at least 2")
        if self.max_generations < 1:
            raise SynthesisError("need at least one generation")
        if not 1.0 <= self.selection_pressure <= 2.0:
            raise SynthesisError(
                "selection pressure must lie in [1, 2] for linear scaling"
            )
        if self.tournament_size < 1:
            raise SynthesisError("tournament size must be positive")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise SynthesisError("crossover rate must lie in [0, 1]")
        if self.per_gene_mutation_rate is not None and not (
            0.0 <= self.per_gene_mutation_rate <= 1.0
        ):
            raise SynthesisError("mutation rate must lie in [0, 1]")
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise SynthesisError(
                "elite count must be in [0, population size)"
            )
        if not 0.0 <= self.group_mutation_rate <= 1.0:
            raise SynthesisError("group mutation rate must lie in [0, 1]")
        if not 0.0 <= self.shutdown_mutation_rate <= 1.0:
            raise SynthesisError("shutdown mutation rate must lie in [0, 1]")
        if not 0.0 < self.repair_fraction <= 1.0:
            raise SynthesisError("repair fraction must lie in (0, 1]")
        for name in ("area_weight", "transition_weight", "timing_weight"):
            if getattr(self, name) < 0:
                raise SynthesisError(f"{name} must be non-negative")
        if self.local_search_budget_factor < 0:
            raise SynthesisError(
                "local search budget factor must be non-negative"
            )
        if self.inner_loop_iterations < 0:
            raise SynthesisError(
                "inner loop iterations must be non-negative"
            )
        if self.jobs < 1:
            raise SynthesisError("jobs must be at least 1")
        if self.mode_cache_size < 1:
            raise SynthesisError("mode cache size must be at least 1")
        if self.dvs_warm_start and not self.vector_dvs:
            raise SynthesisError(
                "dvs_warm_start requires the vectorised kernels "
                "(vector_dvs=True)"
            )
        if self.speculation_depth < 1:
            raise SynthesisError("speculation depth must be at least 1")
        if self.pool_failure_mode not in ("fallback", "raise"):
            raise SynthesisError(
                "pool failure mode must be 'fallback' or 'raise'"
            )

    def with_updates(self, **changes: Any) -> "SynthesisConfig":
        """A copy of this configuration with some fields replaced."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialisation (checkpoint files, campaign specs, run metadata)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view of every field (enums as values)."""
        data = dataclasses.asdict(self)
        data["dvs"] = self.dvs.value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SynthesisConfig":
        """Rebuild a validated config from :meth:`to_dict` output.

        Unknown keys are rejected (a typo in a hand-written campaign
        spec must not silently fall back to a default), and field
        values pass through ``__post_init__`` validation as usual.
        """
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise SynthesisError(
                f"unknown configuration keys: {unknown}; valid keys are "
                f"{sorted(field_names)}"
            )
        values = dict(data)
        if "dvs" in values and not isinstance(values["dvs"], DvsMethod):
            try:
                values["dvs"] = DvsMethod(values["dvs"])
            except ValueError:
                raise SynthesisError(
                    f"unknown DVS method {values['dvs']!r}; valid values "
                    f"are {[m.value for m in DvsMethod]}"
                ) from None
        for name in ("per_gene_mutation_rate",):
            if values.get(name) is not None:
                values[name] = float(values[name])
        return cls(**values)
