"""Pure GA stage operators of the generation pipeline.

The generation loop in :mod:`repro.synthesis.driver` is a sequence of
explicit stages — evaluate → rank → select → breed → improve →
(restart) — and this module holds the breeding stages as *pure
functions*: every output is fully determined by the inputs, including
the :class:`random.Random` instance, and no global state is touched
beyond the metrics registry meters inside :mod:`repro.synthesis.ga`.
That purity is what makes speculative next-generation evaluation
possible at all: :mod:`repro.synthesis.speculation` replays these exact
functions on a cloned RNG to predict the next population without
consuming a single draw from the live stream.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.engine.records import EvalRecord
from repro.mapping.encoding import MappingString
from repro.problem import Problem
from repro.synthesis import ga
from repro.synthesis import mutations
from repro.synthesis.config import SynthesisConfig


def initial_population(
    problem: Problem, config: SynthesisConfig, rng: random.Random
) -> List[MappingString]:
    """The seed population: half uniform, half software-biased.

    On large problems uniform genomes map ~half of all tasks into
    hardware and violate every area constraint, leaving the GA without
    a feasible foothold — the software-biased half provides one.
    """
    population: List[MappingString] = []
    for index in range(config.population_size):
        if index % 2 == 0:
            population.append(MappingString.random(problem, rng))
        else:
            population.append(
                MappingString.random_software_biased(
                    problem, rng, bias=rng.uniform(0.6, 0.98)
                )
            )
    return population


def maybe_group_move(
    genome: MappingString, rng: random.Random, group_mutation_rate: float
) -> MappingString:
    """With probability ``group_mutation_rate``, apply a type group move."""
    if rng.random() >= group_mutation_rate:
        return genome
    moved = mutations.type_group_move(genome, rng)
    return moved if moved is not None else genome


def breed_next(
    config: SynthesisConfig,
    mutation_rate: float,
    population: Sequence[MappingString],
    records: Sequence[EvalRecord],
    rng: random.Random,
) -> List[MappingString]:
    """Rank, select, cross over and insert: one breeding pipeline pass.

    Consumes the exact RNG draw sequence the monolithic loop used —
    ranking, tournament selection, crossover/mutation, then the
    optional per-offspring group move — so replaying it on a cloned
    generator reproduces the next population bit-identically.
    """
    ranked = ga.rank_population(
        list(zip(population, (r.fitness for r in records))),
        config.selection_pressure,
    )
    parents = ga.select_mating_pool(
        ranked,
        rng,
        config.tournament_size,
        config.population_size - config.elite_count,
    )
    offspring = ga.breed(
        parents, rng, config.crossover_rate, mutation_rate
    )
    if config.group_mutation_rate > 0:
        offspring = [
            maybe_group_move(child, rng, config.group_mutation_rate)
            for child in offspring
        ]
    return ga.insert_offspring(
        ranked,
        offspring,
        config.elite_count,
        config.population_size,
    )
