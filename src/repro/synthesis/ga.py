"""The generic genetic-algorithm machinery of the outer loop.

Implements the GA building blocks the paper names in Fig. 4: linear
scaling of ranked fitness (line 15), tournament selection of mating
individuals (line 16), two-point crossover (line 17) and offspring
insertion with elitism (line 18).  Fitness is *minimised*; linear
scaling converts ranks into selection weights with a configurable
pressure, so the GA behaves identically across the very different
power magnitudes of the benchmark set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.mapping.encoding import MappingString
from repro.obs.metrics import REGISTRY


@dataclass
class RankedIndividual:
    """A genome with its fitness and linear-scaled selection weight."""

    genome: MappingString
    fitness: float
    weight: float = 0.0


def rank_population(
    population: Sequence[Tuple[MappingString, float]],
    selection_pressure: float,
) -> List[RankedIndividual]:
    """Sort by fitness (ascending = best first) and assign linear weights.

    With ``N`` individuals and pressure ``SP`` ∈ [1, 2], the best
    individual receives weight ``SP`` and the worst ``2 − SP``; weights
    interpolate linearly in between (Baker's linear ranking).
    """
    ordered = sorted(population, key=lambda item: item[1])
    count = len(ordered)
    ranked: List[RankedIndividual] = []
    for position, (genome, fitness) in enumerate(ordered):
        if count > 1:
            weight = selection_pressure - (
                2.0 * (selection_pressure - 1.0) * position / (count - 1)
            )
        else:
            weight = 1.0
        ranked.append(
            RankedIndividual(genome=genome, fitness=fitness, weight=weight)
        )
    return ranked


def tournament_select(
    ranked: Sequence[RankedIndividual],
    rng: random.Random,
    tournament_size: int,
) -> RankedIndividual:
    """Pick the highest-weight individual among ``tournament_size`` draws."""
    best: Optional[RankedIndividual] = None
    for _ in range(max(1, tournament_size)):
        contender = ranked[rng.randrange(len(ranked))]
        if best is None or contender.weight > best.weight:
            best = contender
    return best


def select_mating_pool(
    ranked: Sequence[RankedIndividual],
    rng: random.Random,
    tournament_size: int,
    pool_size: int,
) -> List[MappingString]:
    """Tournament-select ``pool_size`` parents (with replacement)."""
    return [
        tournament_select(ranked, rng, tournament_size).genome
        for _ in range(pool_size)
    ]


def breed(
    parents: Sequence[MappingString],
    rng: random.Random,
    crossover_rate: float,
    per_gene_mutation_rate: float,
) -> List[MappingString]:
    """Pair parents, apply two-point crossover and gene mutation."""
    offspring: List[MappingString] = []
    crossovers = 0
    for first, second in zip(parents[0::2], parents[1::2]):
        if rng.random() < crossover_rate:
            child_a, child_b = first.crossover_two_point(second, rng)
            crossovers += 1
        else:
            child_a, child_b = first, second
        offspring.append(child_a.mutate(rng, per_gene_mutation_rate))
        offspring.append(child_b.mutate(rng, per_gene_mutation_rate))
    if len(parents) % 2 == 1:
        offspring.append(parents[-1].mutate(rng, per_gene_mutation_rate))
    if crossovers:
        REGISTRY.inc("ga_crossovers_total", crossovers)
    REGISTRY.inc("ga_offspring_total", len(offspring))
    return offspring


def insert_offspring(
    ranked: Sequence[RankedIndividual],
    offspring: Sequence[MappingString],
    elite_count: int,
    population_size: int,
) -> List[MappingString]:
    """Next generation: elites, then offspring, topped up by survivors."""
    next_generation: List[MappingString] = [
        individual.genome for individual in ranked[:elite_count]
    ]
    for genome in offspring:
        if len(next_generation) >= population_size:
            break
        next_generation.append(genome)
    survivor_index = elite_count
    while (
        len(next_generation) < population_size
        and survivor_index < len(ranked)
    ):
        next_generation.append(ranked[survivor_index].genome)
        survivor_index += 1
    return next_generation


def population_diversity(population: Sequence[MappingString]) -> float:
    """Fraction of distinct genomes in the population (0..1]."""
    if not population:
        return 0.0
    return len(set(population)) / len(population)
