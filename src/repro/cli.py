"""Command-line interface: run the paper's experiments from a shell.

Examples::

    repro-mm table1                      # Table 1 (no DVS), all instances
    repro-mm table2 --runs 3 --only mul6 mul7
    repro-mm table3 --runs 2             # smart phone, both rows
    repro-mm synthesize mul5 --dvs gradient --probabilities
    repro-mm inspect smartphone          # print a problem's structure
    repro-mm problems                    # list registered instances
    repro-mm adapt smartphone --steps 300 --seed 1   # closed-loop Ψ demo
    repro-mm campaign spec.json --out runs/t1   # resumable campaign
    repro-mm campaign --resume runs/t1          # continue after a kill
    repro-mm campaign --report runs/t1          # tables from events only
    repro-mm campaign --status runs/t1          # progress + ETA snapshot
    repro-mm campaign --tail runs/t1            # follow the event stream
    repro-mm serve --state srv --slots 2        # campaign job server
    repro-mm submit spec.json --state srv --tenant alice --wait
    repro-mm jobs --state srv                   # list server jobs
    repro-mm cancel j000001-alice --state srv   # cancel one job

The module is also runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.analysis.experiments import (
    run_smartphone_experiment,
    run_suite_experiment,
)
from repro.analysis.paper_data import TABLE1, TABLE2
from repro.analysis.reporting import (
    format_comparison_table,
    format_paper_comparison,
    format_smartphone_table,
    results_from_events,
)
from repro.benchgen import registry
from repro.benchgen.suite import SUITE_SPECS
from repro.errors import CampaignError
from repro.problem import Problem
from repro.runtime import (
    CampaignSpec,
    events_path,
    resume_campaign,
    run_campaign,
)
from repro.synthesis.config import DvsMethod, SynthesisConfig
from repro.synthesis.cosynthesis import MultiModeSynthesizer


def _load_problem(name: str) -> Problem:
    """Resolve an instance name via the registry (exit 2 on unknown)."""
    try:
        return registry.get(name)
    except KeyError as exc:
        raise SystemExit(f"repro-mm: error: {exc.args[0]}") from None


def _config_from_args(args: argparse.Namespace) -> SynthesisConfig:
    return SynthesisConfig(
        use_probabilities=getattr(args, "probabilities", True),
        dvs=DvsMethod(getattr(args, "dvs", "none")),
        population_size=args.population,
        max_generations=args.generations,
        convergence_generations=args.convergence,
        jobs=getattr(args, "jobs", 1),
        async_pool=not getattr(args, "no_async_pool", False),
        mode_cache=not getattr(args, "no_mode_cache", False),
        vector_dvs=not getattr(args, "no_vector_dvs", False),
        dvs_warm_start=getattr(args, "dvs_warm_start", False),
        speculative=not getattr(args, "no_speculation", False),
        speculation_depth=getattr(args, "speculation_depth", 1),
        seed=args.seed,
    )


def _add_ga_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--population", type=int, default=40, help="GA population size"
    )
    parser.add_argument(
        "--generations", type=int, default=120, help="generation limit"
    )
    parser.add_argument(
        "--convergence",
        type=int,
        default=20,
        help="stop after this many generations without improvement",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for population evaluation (1 = serial; "
            "results are identical for any job count)"
        ),
    )
    parser.add_argument(
        "--no-async-pool",
        action="store_true",
        help=(
            "dispatch pool batches through the per-generation barrier "
            "pool instead of the work-stealing asynchronous evaluator "
            "with cross-worker cache publication (ablation; results "
            "are bit-identical either way; only meaningful with "
            "--jobs > 1)"
        ),
    )
    parser.add_argument(
        "--no-mode-cache",
        action="store_true",
        help=(
            "evaluate through the monolithic legacy path instead of "
            "the incremental per-mode pipeline (ablation; results are "
            "bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--no-vector-dvs",
        action="store_true",
        help=(
            "run the PV-DVS descent through the legacy object-graph "
            "loop instead of the array kernels (ablation; results are "
            "bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--no-speculation",
        action="store_true",
        help=(
            "do not evaluate predicted next-generation genomes during "
            "the breeding window (ablation; results are bit-identical "
            "either way; only meaningful with --jobs > 1 and the "
            "asynchronous pool)"
        ),
    )
    parser.add_argument(
        "--speculation-depth",
        type=int,
        default=1,
        help=(
            "speculation look-ahead: 1 dispatches only the exactly "
            "predicted next batch, deeper levels add heuristic probe "
            "mutations as pool filler and cache warmers"
        ),
    )
    parser.add_argument(
        "--dvs-warm-start",
        action="store_true",
        help=(
            "seed the vectorised PV-DVS descent with the analytical "
            "continuous-relaxation warm start (changes the descent "
            "path; final energy never worse on the fuzz corpus)"
        ),
    )


def _cmd_table(args: argparse.Namespace, dvs: DvsMethod) -> int:
    config = SynthesisConfig(
        population_size=args.population,
        max_generations=args.generations,
        convergence_generations=args.convergence,
        jobs=args.jobs,
    )
    results = run_suite_experiment(
        dvs=dvs,
        runs=args.runs,
        config=config,
        examples=args.only or None,
        base_seed=args.seed,
    )
    table_number = "1" if dvs is DvsMethod.NONE else "2"
    title = (
        f"Table {table_number}: Considering Execution Probabilities "
        f"({'w/o' if dvs is DvsMethod.NONE else 'with'} DVS, "
        f"{args.runs} runs averaged)"
    )
    print(format_comparison_table(results, title))
    paper = TABLE1 if dvs is DvsMethod.NONE else TABLE2
    print()
    print(
        format_paper_comparison(
            results,
            {row.example: row for row in paper},
            title=f"Table {table_number} vs paper",
        )
    )
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    config = SynthesisConfig(
        population_size=args.population,
        max_generations=args.generations,
        convergence_generations=args.convergence,
        jobs=args.jobs,
    )
    results = run_smartphone_experiment(
        runs=args.runs, config=config, base_seed=args.seed
    )
    print(
        format_smartphone_table(
            results,
            title=(
                f"Table 3: Results of Smart Phone Experiments "
                f"({args.runs} runs averaged)"
            ),
        )
    )
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    problem = _load_problem(args.problem)
    config = _config_from_args(args)
    result = MultiModeSynthesizer(problem, config).run()
    print(result.best.summary())
    print(
        f"  generations: {result.generations}, evaluations: "
        f"{result.evaluations}, cpu time: {result.cpu_time:.1f} s"
    )
    if result.perf is not None:
        perf = result.perf
        print(
            f"  perf: {perf.evaluations_per_second:.0f} evals/s, "
            f"cache hit rate {perf.cache_hit_rate:.1%}, "
            f"jobs {perf.jobs}"
            + (
                f", pool utilisation {perf.pool_utilisation:.1%}"
                if perf.jobs > 1
                else ""
            )
        )
    if args.gantt:
        from repro.analysis.gantt import render_all_modes

        print()
        print(
            render_all_modes(
                result.best.schedules, problem.architecture
            )
        )
    if args.save_mapping:
        import json

        from repro.io import mapping_to_dict

        with open(args.save_mapping, "w") as handle:
            json.dump(
                mapping_to_dict(result.best.mapping),
                handle,
                indent=2,
                sort_keys=True,
            )
        print(f"  mapping written to {args.save_mapping}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    problem = _load_problem(args.problem)
    omsm = problem.omsm
    print(f"problem {problem.name!r}")
    print(f"  modes: {len(omsm)}, genes: {problem.genome_length()}")
    for mode in omsm.modes:
        graph = mode.task_graph
        print(
            f"    {mode.name}: Ψ={mode.probability:.3f} "
            f"φ={mode.period * 1e3:.1f} ms, {len(graph)} tasks, "
            f"{len(graph.edges)} edges, {len(graph.task_types())} types"
        )
    print(f"  shared task types: {sorted(omsm.shared_task_types())}")
    print("  architecture:")
    for pe in problem.architecture.pes:
        dvs = (
            f", DVS {pe.voltage_levels}" if pe.dvs_enabled else ""
        )
        area = f", area {pe.area:.0f}" if pe.is_hardware else ""
        print(
            f"    {pe.name}: {pe.kind.value}{area}, "
            f"P_stat {pe.static_power * 1e3:.2f} mW{dvs}"
        )
    for link in problem.architecture.links:
        print(
            f"    {link.name}: links {sorted(link.connects)}, "
            f"{link.bandwidth_bps / 1e6:.1f} Mbit/s"
        )
    print(f"  transitions: {len(omsm.transitions)}")
    return 0


def _print_campaign_event(event: Dict[str, object]) -> None:
    """One terse progress line per job-level event."""
    kind = event.get("event")
    if kind == "campaign_started":
        print(
            f"campaign {event['campaign']!r}: "
            f"{event['pending_jobs']}/{event['total_jobs']} jobs pending"
        )
    elif kind == "job_started":
        resumed = event.get("resumed_from") or 0
        suffix = f" (resuming from generation {resumed})" if resumed else ""
        print(f"  [{event['job_id']}] started{suffix}")
    elif kind == "job_finished":
        print(
            f"  [{event['job_id']}] finished: "
            f"{float(event['power']) * 1e3:.3f} mW, "
            f"{event['generations']} generations, "
            f"{float(event['cpu_time']):.1f} s"
        )
    elif kind == "job_retried":
        print(
            f"  [{event['job_id']}] worker pool died; retrying in "
            f"{event['backoff_seconds']} s"
        )
    elif kind == "job_failed":
        print(f"  [{event['job_id']}] FAILED: {event['error']}")
    elif kind == "job_skipped":
        print(f"  [{event['job_id']}] already complete, skipped")


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.status is not None:
        from repro.obs import (
            campaign_status,
            format_pool_stats,
            format_status,
            load_run_summary,
        )

        try:
            print(format_status(campaign_status(args.status)))
        except CampaignError as exc:
            raise SystemExit(f"repro-mm: error: {exc}") from None
        # Pool figures come from the run summary when one exists; any
        # field an older summary lacks (pre-dispatch-window files, a
        # run that fell back to serial) renders as n/a, never a crash.
        try:
            summary = load_run_summary(args.status)
        except CampaignError:
            summary = None
        if summary is not None:
            print(format_pool_stats(summary))
        return 0
    if args.tail is not None:
        from repro.obs import format_event, tail_events

        try:
            for event in tail_events(
                events_path(args.tail), follow=not args.no_follow
            ):
                print(format_event(event), flush=True)
        except CampaignError as exc:
            raise SystemExit(f"repro-mm: error: {exc}") from None
        except KeyboardInterrupt:
            pass
        return 0
    if args.report is not None:
        try:
            results = results_from_events(events_path(args.report))
        except CampaignError as exc:
            raise SystemExit(f"repro-mm: error: {exc}") from None
        if not results:
            print("no finished jobs in the event stream yet")
            return 1
        print(
            format_comparison_table(
                results, title=f"Campaign report ({args.report})"
            )
        )
        return 0
    if args.init_spec is not None:
        template = CampaignSpec(
            name="example",
            instances=["mul9", "mul11"],
            dvs_methods=[DvsMethod.NONE],
            probability_settings=[False, True],
            runs=2,
            base_seed=400,
            config=SynthesisConfig(),
        )
        template.save(args.init_spec)
        print(f"template campaign spec written to {args.init_spec}")
        return 0
    on_event = None if args.quiet else _print_campaign_event
    try:
        if args.resume is not None:
            outcome = resume_campaign(args.resume, on_event=on_event)
        else:
            if args.spec is None or args.out is None:
                raise SystemExit(
                    "repro-mm: error: campaign needs either SPEC --out DIR, "
                    "--resume DIR, --report DIR or --init-spec FILE"
                )
            spec = CampaignSpec.load(args.spec)
            outcome = run_campaign(spec, args.out, on_event=on_event)
    except CampaignError as exc:
        raise SystemExit(f"repro-mm: error: {exc}") from None
    print(
        f"campaign done: {outcome.completed} jobs completed, "
        f"{outcome.failed} failed (run dir: {outcome.run_dir})"
    )
    results = results_from_events(events_path(outcome.run_dir))
    if results:
        print()
        print(
            format_comparison_table(
                results, title=f"Campaign {outcome.spec.name!r}"
            )
        )
    return 1 if outcome.failures else 0


def _server_socket(args: argparse.Namespace) -> str:
    """Resolve the server socket from ``--socket`` or ``--state``."""
    import pathlib

    from repro.server.service import SOCKET_FILENAME

    if getattr(args, "socket", None):
        return str(args.socket)
    if getattr(args, "state", None):
        return str(pathlib.Path(args.state) / SOCKET_FILENAME)
    raise SystemExit(
        f"repro-mm: error: {args.command} needs --state DIR or "
        f"--socket PATH to locate the server"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServerError
    from repro.server.service import CampaignServer

    try:
        server = CampaignServer(
            args.state,
            socket_path=args.socket,
            slots=args.slots,
            tenant_quota=args.tenant_quota,
            queue_bound=args.queue_bound,
        )
    except ServerError as exc:
        raise SystemExit(f"repro-mm: error: {exc}") from None
    print(
        f"serving campaigns from {server.state_dir} "
        f"(socket {server.socket_path}, {args.slots} slots)",
        flush=True,
    )
    try:
        server.run()
    except ServerError as exc:
        raise SystemExit(f"repro-mm: error: {exc}") from None
    except KeyboardInterrupt:
        pass
    print("server stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import AdmissionError, ServerError
    from repro.obs import format_event
    from repro.server.client import ServerClient

    client = ServerClient(_server_socket(args))
    try:
        spec = CampaignSpec.load(args.spec)
        submitted = client.submit(
            spec, tenant=args.tenant, priority=args.priority
        )
    except AdmissionError as exc:
        raise SystemExit(
            f"repro-mm: rejected (backpressure): {exc}"
        ) from None
    except (CampaignError, ServerError) as exc:
        raise SystemExit(f"repro-mm: error: {exc}") from None
    job_id = submitted["job_id"]
    print(f"submitted {job_id} ({submitted['state']})")
    if not (args.wait or args.follow):
        return 0
    try:
        if args.follow:
            for event in client.stream(job_id, follow=True):
                print(format_event(event), flush=True)
        job = client.wait(job_id, timeout=args.timeout)
    except ServerError as exc:
        raise SystemExit(f"repro-mm: error: {exc}") from None
    except KeyboardInterrupt:
        print(f"\ndetached; job {job_id} keeps running on the server")
        return 0
    state = job["state"]
    if state == "done":
        print(f"{job_id} done")
        return 0
    print(f"{job_id} ended {state!r}: {job.get('error') or 'n/a'}")
    return 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.errors import ServerError
    from repro.server.client import ServerClient

    client = ServerClient(_server_socket(args))
    try:
        rows = client.jobs(tenant=args.tenant)
    except ServerError as exc:
        raise SystemExit(f"repro-mm: error: {exc}") from None
    if not rows:
        print("no jobs")
        return 0
    width = max(len(str(row["job_id"])) for row in rows)
    print(f"{'job':<{width}}  {'tenant':<12}  {'state':<9}  campaign")
    for row in rows:
        print(
            f"{row['job_id']:<{width}}  {row['tenant']:<12}  "
            f"{row['state']:<9}  {row.get('campaign') or '-'}"
        )
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.errors import ServerError
    from repro.server.client import ServerClient

    client = ServerClient(_server_socket(args))
    try:
        response = client.cancel(args.job_id)
    except ServerError as exc:
        raise SystemExit(f"repro-mm: error: {exc}") from None
    print(f"{args.job_id}: {response['state']}")
    return 0


def _cmd_problems(args: argparse.Namespace) -> int:
    """List every registry instance with its mode and gene counts."""
    names = registry.names()
    if not names:
        print("no problems registered")
        return 1
    rows = []
    for name in names:
        problem = registry.get(name)
        rows.append(
            (
                name,
                len(problem.omsm),
                problem.genome_length(),
                len(problem.architecture.pes),
            )
        )
    width = max(len(name) for name, *_ in rows)
    print(f"{'name':<{width}}  modes  genes  PEs")
    for name, modes, genes, pes in rows:
        print(f"{name:<{width}}  {modes:>5}  {genes:>5}  {pes:>3}")
    return 0


def _load_trace(path: str) -> list:
    """Read a trace file: a JSON list of ``[mode, dwell]`` pairs."""
    import json

    try:
        data = json.loads(open(path).read())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(
            f"repro-mm: error: cannot read trace {path!r}: {exc}"
        ) from None
    if not isinstance(data, list):
        raise SystemExit(
            f"repro-mm: error: trace {path!r} must be a JSON list of "
            f"[mode, dwell] pairs"
        )
    return [(str(mode), float(dwell)) for mode, dwell in data]


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.adaptive import AdaptationConfig
    from repro.api import adapt_online

    problem = _load_problem(args.problem)
    config = AdaptationConfig(
        synthesis=_config_from_args(args),
        seed=args.seed,
    )
    trace = _load_trace(args.trace) if args.trace else None
    report = adapt_online(
        problem,
        trace=trace,
        steps=args.steps,
        config=config,
        library=args.library,
        run_dir=args.out,
    )
    print(
        f"adaptation over {report.simulated_time:.1f} s of simulated "
        f"operation ({problem.name}):"
    )
    print(
        f"  energy: {report.energy:.4f} J "
        f"(average power {report.average_power * 1e3:.3f} mW)"
    )
    print(
        f"  drift events: {report.drift_events}, swaps: {report.swaps}, "
        f"re-syntheses: {report.resyntheses}"
    )
    print(f"  final design: {report.deployed!r}")
    estimate = ", ".join(
        f"{mode}={value:.3f}"
        for mode, value in sorted(
            report.psi_estimate.items(), key=lambda kv: -kv[1]
        )
    )
    print(f"  final Ψ estimate: {estimate}")
    for decision in report.decisions:
        print(
            f"    t={decision.time:>8.2f}s {decision.kind}: "
            f"{decision.design!r} ({decision.reason})"
        )
    if args.out:
        print(f"  events + library written to {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation.executor import simulate as run_simulation

    problem = _load_problem(args.problem)
    config = _config_from_args(args)
    result = MultiModeSynthesizer(problem, config).run()
    print(result.best.summary())
    print()
    report = run_simulation(
        result.best, horizon=args.horizon, seed=args.seed
    )
    print(report.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mm",
        description=(
            "Multi-mode co-synthesis experiments (DATE 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table, dvs in (("table1", DvsMethod.NONE), ("table2", None)):
        table_parser = sub.add_parser(
            table,
            help=f"reproduce {table} "
            + ("(no DVS)" if table == "table1" else "(with DVS)"),
        )
        table_parser.add_argument(
            "--runs", type=int, default=5, help="optimisation runs averaged"
        )
        table_parser.add_argument(
            "--only",
            nargs="*",
            choices=[spec.name for spec in SUITE_SPECS],
            help="restrict to these instances",
        )
        _add_ga_options(table_parser)

    table3 = sub.add_parser("table3", help="reproduce Table 3 (smart phone)")
    table3.add_argument("--runs", type=int, default=3)
    _add_ga_options(table3)

    instance_help = f"instance name: one of {', '.join(registry.names())}"

    synth = sub.add_parser("synthesize", help="synthesise one instance")
    synth.add_argument("problem", help=instance_help)
    synth.add_argument(
        "--dvs",
        choices=[m.value for m in DvsMethod],
        default="none",
        help="voltage scaling method",
    )
    synth.add_argument(
        "--probabilities",
        action="store_true",
        default=True,
        help="use true mode probabilities in the fitness (default)",
    )
    synth.add_argument(
        "--no-probabilities",
        dest="probabilities",
        action="store_false",
        help="probability-neglecting baseline",
    )
    synth.add_argument(
        "--gantt",
        action="store_true",
        help="print an ASCII Gantt chart of every mode's schedule",
    )
    synth.add_argument(
        "--save-mapping",
        metavar="FILE",
        default=None,
        help="write the best mapping to a JSON file",
    )
    _add_ga_options(synth)

    inspect = sub.add_parser("inspect", help="print a problem's structure")
    inspect.add_argument("problem", help=instance_help)

    sub.add_parser(
        "problems",
        help="list all registered benchmark instances with mode counts",
    )

    adapt = sub.add_parser(
        "adapt",
        help=(
            "run the closed-loop Ψ-adaptation demo: estimate mode "
            "probabilities from a trace, swap/re-synthesise on drift"
        ),
    )
    adapt.add_argument("problem", help=instance_help)
    adapt.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help=(
            "JSON trace file: a list of [mode, dwell_seconds] pairs; "
            "omitted → sample a trace from the OMSM's mode process"
        ),
    )
    adapt.add_argument(
        "--steps",
        type=int,
        default=200,
        help="visits to sample when no --trace is given",
    )
    adapt.add_argument(
        "--library",
        metavar="FILE",
        default=None,
        help=(
            "saved design library JSON to start from; omitted → "
            "synthesise a design-time design first"
        ),
    )
    adapt.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write events.jsonl and the grown library.json to DIR",
    )
    _add_ga_options(adapt)

    campaign = sub.add_parser(
        "campaign",
        help=(
            "run a declarative experiment campaign with durable "
            "checkpoints, bounded retries and a JSONL event stream"
        ),
    )
    campaign.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="campaign spec JSON (see docs/api.md for the format)",
    )
    campaign.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="run directory for checkpoints/results/events",
    )
    campaign.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help=(
            "continue the campaign stored in DIR: completed jobs are "
            "skipped, interrupted jobs resume bit-identically from "
            "their latest checkpoint"
        ),
    )
    campaign.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help=(
            "print the comparison table re-aggregated from DIR's "
            "events.jsonl, without running anything"
        ),
    )
    campaign.add_argument(
        "--init-spec",
        metavar="FILE",
        default=None,
        help="write a template campaign spec to FILE and exit",
    )
    campaign.add_argument(
        "--status",
        metavar="DIR",
        default=None,
        help=(
            "print a progress report for the campaign in DIR "
            "(completed/failed/running jobs, retries, ETA) and exit"
        ),
    )
    campaign.add_argument(
        "--tail",
        metavar="DIR",
        default=None,
        help=(
            "follow DIR's events.jsonl live, one human-readable line "
            "per event; stops at campaign end (Ctrl-C to detach)"
        ),
    )
    campaign.add_argument(
        "--no-follow",
        action="store_true",
        help="with --tail: print the events already on disk and exit",
    )
    campaign.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress lines",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the multi-tenant campaign job server: JSON-lines over "
            "a Unix socket, weighted fair scheduling, durable jobs that "
            "survive restarts"
        ),
    )
    serve.add_argument(
        "--state",
        metavar="DIR",
        required=True,
        help="server state directory (jobs, runs, socket, events)",
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="socket path override (default: STATE/server.sock)",
    )
    serve.add_argument(
        "--slots",
        type=int,
        default=2,
        help="concurrent campaign worker subprocesses",
    )
    serve.add_argument(
        "--tenant-quota",
        type=int,
        default=8,
        help="max queued+running jobs per tenant before rejection",
    )
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        help="max queued jobs across all tenants before rejection",
    )

    submit = sub.add_parser(
        "submit", help="submit a campaign spec to a running server"
    )
    submit.add_argument("spec", help="campaign spec JSON file")
    submit.add_argument(
        "--state",
        metavar="DIR",
        default=None,
        help="server state directory (to find STATE/server.sock)",
    )
    submit.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="server socket path (overrides --state)",
    )
    submit.add_argument(
        "--tenant", default="default", help="tenant identity"
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="priority within the tenant's queue (higher first)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job reaches a terminal state",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="stream the job's campaign events while waiting",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=3600.0,
        help="with --wait/--follow: seconds before giving up",
    )

    jobs_parser = sub.add_parser(
        "jobs", help="list jobs known to a running server"
    )
    jobs_parser.add_argument("--state", metavar="DIR", default=None)
    jobs_parser.add_argument("--socket", metavar="PATH", default=None)
    jobs_parser.add_argument(
        "--tenant", default=None, help="restrict to one tenant"
    )

    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running server job"
    )
    cancel.add_argument("job_id", help="job id as printed by submit/jobs")
    cancel.add_argument("--state", metavar="DIR", default=None)
    cancel.add_argument("--socket", metavar="PATH", default=None)

    simulate = sub.add_parser(
        "simulate",
        help=(
            "synthesise an instance, then validate Equation (1) by "
            "trace-driven simulation"
        ),
    )
    simulate.add_argument("problem", help=instance_help)
    simulate.add_argument(
        "--horizon",
        type=float,
        default=500.0,
        help="simulated operational time in seconds",
    )
    simulate.add_argument(
        "--dvs",
        choices=[m.value for m in DvsMethod],
        default="none",
    )
    simulate.add_argument(
        "--probabilities",
        action="store_true",
        default=True,
    )
    simulate.add_argument(
        "--no-probabilities",
        dest="probabilities",
        action="store_false",
    )
    _add_ga_options(simulate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table(args, DvsMethod.NONE)
    if args.command == "table2":
        return _cmd_table(args, DvsMethod.GRADIENT)
    if args.command == "table3":
        return _cmd_table3(args)
    if args.command == "synthesize":
        return _cmd_synthesize(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "problems":
        return _cmd_problems(args)
    if args.command == "adapt":
        return _cmd_adapt(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
