"""The bounded per-mode result cache of the incremental pipeline.

Equation (1) is a probability-weighted *sum over modes*, and almost
everything the evaluator computes for one mode — communication mapping,
mobilities, core demand, the list schedule, DVS voltage selection and
the per-mode power figures — depends only on that mode's slice of the
mapping string (plus, for scheduling, the hardware core counts the mode
actually reads).  A :class:`ModeResultCache` memoises those per-mode
stage results across candidates, so a genome that perturbs one mode
pays for one mode's pipeline instead of all of them.

Two segments, two keys:

``prep``
    keyed by ``(mode, mode-gene slice, config fingerprint)`` — the
    mode mapping, mobilities and per-PE core demand.  Pure function of
    the mode's genes.
``sched``
    keyed by ``(mode, mode-gene slice, core-set signature, config
    fingerprint)`` — the post-DVS schedule, timing violations and
    per-mode dynamic/static power.  The core-set signature captures the
    *only* cross-mode coupling: the allocated core counts of exactly
    the (PE, task type) pairs this mode's scheduler reads (see
    :func:`repro.eval.stages.core_signature`), so ASIC union changes
    caused by *other* modes only miss when they actually change a count
    this mode observes.

Both segments are bounded LRUs (``SynthesisConfig.mode_cache_size``
entries each); hits, misses and evictions are metered per mode on the
process-global :data:`~repro.obs.metrics.REGISTRY` together with a
hit-rate gauge and an (approximate) bytes-resident gauge.

Cached values are Ψ-independent — probabilities only enter the final
weighted sum — so one cache instance remains valid across
``Problem.with_probabilities`` re-targets (the adaptive subsystem's
warm-started re-synthesis inherits it; see :func:`mode_cache_for`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY
from repro.scheduling.mobility import MobilityInfo
from repro.scheduling.schedule import ModeSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.problem import Problem
    from repro.synthesis.config import SynthesisConfig

#: The configuration facets that change per-mode stage results.  Two
#: configs with equal fingerprints produce bit-identical mode results,
#: so entries are shared; anything else (fitness weights, probability
#: policy, GA sizing) only affects the uncached combine stages.
ConfigFingerprint = Tuple[str, bool, bool, int]

#: ``(mode, mode-gene slice, fingerprint)``.
PrepKey = Tuple[str, Tuple[str, ...], ConfigFingerprint]

#: ``((pe, ((type, cores), ...)), ...)`` — the core counts this mode reads.
CoreSignature = Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...]

#: ``(mode, mode-gene slice, core signature, fingerprint)``.
SchedKey = Tuple[str, Tuple[str, ...], CoreSignature, ConfigFingerprint]

#: Per-PE ``(base_counts, desired_counts)`` core demand of one mode.
ModeDemand = Dict[str, Tuple[Dict[str, int], Dict[str, int]]]

#: One journalled cache insertion: ``(segment, key, value)`` with
#: segment ``"prep"`` or ``"sched"``.  The unit of cross-worker cache
#: publication (see :meth:`ModeResultCache.start_journal`).
PublishedEntry = Tuple[str, Any, Any]


def config_fingerprint(config: "SynthesisConfig") -> ConfigFingerprint:
    """The facets of a configuration that per-mode results depend on."""
    return (
        config.dvs.value,
        config.dvs_shared_rail,
        config.decode_cache,
        config.inner_loop_iterations,
    )


class ModePrep:
    """Mapping-slice-derived per-mode data (prep segment value)."""

    __slots__ = ("mode_mapping", "mobilities", "demand", "approx_bytes")

    def __init__(
        self,
        mode_mapping: Dict[str, str],
        mobilities: Dict[str, MobilityInfo],
        demand: ModeDemand,
    ) -> None:
        self.mode_mapping = mode_mapping
        self.mobilities = mobilities
        self.demand = demand
        # Rough per-entry footprint: dict slots + per-task strings and
        # mobility floats.  Good enough for a resident-bytes gauge; no
        # claim of allocator-level accuracy.
        demand_entries = sum(
            len(base) + len(desired)
            for base, desired in demand.values()
        )
        self.approx_bytes = (
            160 * len(mode_mapping)
            + 96 * len(mobilities)
            + 96 * demand_entries
            + 256
        )


class ModeOutcome:
    """Schedule-stage result of one mode (sched segment value).

    ``schedule is None`` marks a *scheduling-infeasible* mode slice
    (the list scheduler raised): the pipeline returns ``None`` for the
    whole candidate, exactly like the monolithic path — and the
    infeasibility itself is cacheable.
    """

    __slots__ = ("schedule", "timing", "dynamic", "static", "approx_bytes")

    def __init__(
        self,
        schedule: Optional[ModeSchedule],
        timing: Dict[str, float],
        dynamic: float,
        static: float,
    ) -> None:
        self.schedule = schedule
        self.timing = timing
        self.dynamic = dynamic
        self.static = static
        if schedule is None:
            footprint = 128
        else:
            footprint = 512 + 320 * (
                len(schedule.tasks) + len(schedule.comms)
            )
        self.approx_bytes = footprint + 64 * len(timing)

    @property
    def feasible(self) -> bool:
        return self.schedule is not None


class ModeResultCache:
    """Two bounded LRU segments of per-mode stage results.

    One instance serves one :class:`Problem` (and its
    ``with_probabilities`` descendants) within one process; pool
    workers each hold their own (fork workers inherit the parent's
    warm entries copy-on-write).  All bookkeeping is metered on the
    process-global metrics registry, so worker-side hits travel back to
    the parent through the existing snapshot/delta/merge plumbing.
    """

    __slots__ = (
        "capacity",
        "_prep",
        "_sched",
        "hits",
        "misses",
        "evictions",
        "bytes_resident",
        "_journal",
    )

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("mode cache capacity must be at least 1")
        self.capacity = capacity
        self._prep: "OrderedDict[PrepKey, ModePrep]" = OrderedDict()
        self._sched: "OrderedDict[SchedKey, ModeOutcome]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_resident = 0
        self._journal: Optional[List[PublishedEntry]] = None

    # ------------------------------------------------------------------
    # Prep segment
    # ------------------------------------------------------------------

    def get_prep(self, key: PrepKey) -> Optional[ModePrep]:
        entry = self._prep.get(key)
        self._count(entry is not None, key[0], "prep")
        if entry is not None:
            self._prep.move_to_end(key)
        return entry

    def put_prep(self, key: PrepKey, value: ModePrep) -> None:
        if key in self._prep:  # pragma: no cover - defensive (get-first)
            self.bytes_resident -= self._prep[key].approx_bytes
        self._prep[key] = value
        self.bytes_resident += value.approx_bytes
        if self._journal is not None:
            self._journal.append(("prep", key, value))
        if len(self._prep) > self.capacity:
            evicted_key, evicted = self._prep.popitem(last=False)
            self.bytes_resident -= evicted.approx_bytes
            self.evictions += 1
            REGISTRY.inc(
                "eval_mode_cache_evictions_total",
                mode=evicted_key[0],
                stage="prep",
            )
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Sched segment
    # ------------------------------------------------------------------

    def get_sched(self, key: SchedKey) -> Optional[ModeOutcome]:
        entry = self._sched.get(key)
        self._count(entry is not None, key[0], "sched")
        if entry is not None:
            self._sched.move_to_end(key)
        return entry

    def put_sched(self, key: SchedKey, value: ModeOutcome) -> None:
        if key in self._sched:  # pragma: no cover - defensive (get-first)
            self.bytes_resident -= self._sched[key].approx_bytes
        self._sched[key] = value
        self.bytes_resident += value.approx_bytes
        if self._journal is not None:
            self._journal.append(("sched", key, value))
        if len(self._sched) > self.capacity:
            evicted_key, evicted = self._sched.popitem(last=False)
            self.bytes_resident -= evicted.approx_bytes
            self.evictions += 1
            REGISTRY.inc(
                "eval_mode_cache_evictions_total",
                mode=evicted_key[0],
                stage="sched",
            )
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Cross-worker publication (async pool cache coherence)
    # ------------------------------------------------------------------

    def start_journal(self) -> None:
        """Begin journalling insertions for cross-worker publication.

        While a journal is active every :meth:`put_prep` /
        :meth:`put_sched` also appends a :data:`PublishedEntry`; the
        async pool worker drains the journal after each task and ships
        the entries back with the result, so the parent can fold them
        into its master cache and broadcast them to the other workers.
        Idempotent — restarting keeps the current (drained) journal.
        """
        if self._journal is None:
            self._journal = []

    def drain_journal(self) -> List[PublishedEntry]:
        """Take (and clear) the insertions journalled since last drain."""
        if self._journal is None:
            return []
        drained = self._journal
        self._journal = []
        return drained

    def apply_published(self, entries: List[PublishedEntry]) -> int:
        """Fold another worker's journalled insertions into this cache.

        Insert-if-absent: an entry whose key is already resident is
        skipped (both caches computed the same Ψ-independent value, and
        keeping the local one preserves its LRU position).  Applied
        entries are *not* metered as hits or misses — they were never
        looked up here — but bytes-resident, capacity eviction and the
        gauges behave exactly like local insertions.  Crucially the
        journal is **not** fed, so a broadcast never echoes back.

        Returns the number of entries actually inserted.
        """
        if not entries:
            return 0
        journal = self._journal
        self._journal = None
        try:
            applied = 0
            for segment, key, value in entries:
                store = self._prep if segment == "prep" else self._sched
                if key in store:
                    continue
                store[key] = value
                self.bytes_resident += value.approx_bytes
                applied += 1
                if len(store) > self.capacity:
                    evicted_key, evicted = store.popitem(last=False)
                    self.bytes_resident -= evicted.approx_bytes
                    self.evictions += 1
                    REGISTRY.inc(
                        "eval_mode_cache_evictions_total",
                        mode=evicted_key[0],
                        stage=segment,
                    )
            if applied:
                self._publish_gauges()
            return applied
        finally:
            self._journal = journal

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _count(self, hit: bool, mode: str, stage: str) -> None:
        if hit:
            self.hits += 1
            REGISTRY.inc(
                "eval_mode_cache_hits_total", mode=mode, stage=stage
            )
        else:
            self.misses += 1
            REGISTRY.inc(
                "eval_mode_cache_misses_total", mode=mode, stage=stage
            )
        REGISTRY.set_gauge("eval_mode_cache_hit_rate", self.hit_rate)

    def _publish_gauges(self) -> None:
        REGISTRY.set_gauge(
            "eval_mode_cache_bytes_resident", self.bytes_resident
        )
        REGISTRY.set_gauge("eval_mode_cache_entries", len(self))

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (both segments)."""
        looked_up = self.hits + self.misses
        if looked_up == 0:
            return 0.0
        return self.hits / looked_up

    def __len__(self) -> int:
        return len(self._prep) + len(self._sched)

    def clear(self) -> None:
        """Drop all entries and reset every meter and gauge.

        The hit/miss/eviction meters restart from zero and the
        hit-rate, bytes-resident and entries gauges are re-published
        immediately — ``--status`` must not report the pre-clear
        figures until the next lookup happens to refresh them.
        """
        self._prep.clear()
        self._sched.clear()
        self.bytes_resident = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        REGISTRY.set_gauge("eval_mode_cache_hit_rate", 0.0)
        self._publish_gauges()

    def stats(self) -> Dict[str, float]:
        """A plain-dict summary (tests, debugging, CLI display)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "entries": len(self),
            "bytes_resident": self.bytes_resident,
            "capacity": self.capacity,
        }


def mode_cache_for(
    problem: "Problem", config: "SynthesisConfig"
) -> ModeResultCache:
    """The problem's mode-result cache, built on first use and memoised.

    Follows the ``context_for`` pattern: the cache rides on the
    :class:`Problem` object, so the GA loop, the serial fallback and
    the local-search polish all share one instance — and
    ``Problem.with_probabilities`` descendants inherit it (cached
    values are Ψ-independent; configuration differences are isolated
    by the fingerprint inside every key).
    """
    cached = getattr(problem, "_mode_result_cache", None)
    if cached is None:
        cached = ModeResultCache(config.mode_cache_size)
        problem._mode_result_cache = cached  # type: ignore[attr-defined]
    return cached
