"""The incremental per-mode evaluation pipeline.

:func:`evaluate_mapping_incremental` produces results bit-identical to
the monolithic :func:`repro.synthesis.evaluator.evaluate_mapping` body
(kept as the ablation oracle behind ``SynthesisConfig.mode_cache =
False``), but runs each candidate through explicit stages —

    decode → mobility → core allocation →
    per-mode {comm mapping, list schedule, DVS} → power → fitness

— and serves per-mode stage results of *clean* modes from a bounded
:class:`~repro.eval.cache.ModeResultCache`.  After a single-mode
mutation, only the dirty mode pays for mobility, scheduling and DVS;
everything else is a cache hit recorded in the profiler's dedicated
``cache_hit`` phase (per-mode buckets keep summing exactly to the
aggregates because skipped stages simply record nothing).

The cache is consulted by *key*, not by dirty-set bookkeeping: a mode's
prep is keyed on its gene slice and a config fingerprint, its schedule
additionally on the core counts its scheduler reads (see
:mod:`repro.eval.cache`).  Dirty-mode sets reported by the genetic
operators (:meth:`~repro.mapping.encoding.MappingString.dirty_modes`)
are therefore an observability and testing aid — correctness never
depends on them being precise.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.engine.decode_cache import DecodeContext, context_for
from repro.engine.profile import PROFILER
from repro.eval.cache import (
    ModePrep,
    ModeResultCache,
    config_fingerprint,
    mode_cache_for,
)
from repro.eval.stages import (
    combine_cores,
    core_signature,
    prepare_mode,
    run_mode,
)
from repro.mapping.encoding import MappingString
from repro.mapping.implementation import Implementation, ImplementationMetrics
from repro.power.energy_model import weighted_power
from repro.problem import Problem
from repro.scheduling.schedule import ModeSchedule
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.fitness import FitnessWeights, mapping_fitness


def evaluate_mapping_incremental(
    problem: Problem,
    mapping: MappingString,
    config: SynthesisConfig,
    context: Optional[DecodeContext] = None,
    cache: Optional[ModeResultCache] = None,
) -> Optional[Implementation]:
    """Decode, schedule, scale and score one candidate through the stages.

    Drop-in equivalent of the monolithic evaluator: same ``None`` result
    for communication- or scheduling-infeasible mappings, bit-identical
    metrics otherwise.  ``cache`` defaults to the problem's memoised
    :func:`~repro.eval.cache.mode_cache_for` instance so the GA loop,
    the local-search polish and the pool serial fallback share one.
    """
    if context is None and config.decode_cache:
        context = context_for(problem)
    if cache is None:
        cache = mode_cache_for(problem, config)
    fingerprint = config_fingerprint(config)

    # Stage 1+2 (decode, mobility) and the per-mode share of stage 3
    # (core demand), served from the prep segment when the mode's gene
    # slice was seen before.
    preps: Dict[str, ModePrep] = {}
    slices: Dict[str, Tuple[str, ...]] = {}
    for mode in problem.omsm.modes:
        genes = mapping.mode_genes(mode.name)
        slices[mode.name] = genes
        prep_key = (mode.name, genes, fingerprint)
        started = time.perf_counter()
        prep = cache.get_prep(prep_key)
        if prep is not None:
            PROFILER.add(
                "cache_hit",
                time.perf_counter() - started,
                mode=mode.name,
            )
        else:
            with PROFILER.phase("mobility", mode=mode.name):
                prep = prepare_mode(problem, context, mapping, mode)
            cache.put_prep(prep_key, prep)
        preps[mode.name] = prep

    # Stage 3 (core allocation): the only cross-mode coupling; always
    # recombined from the (cached) per-mode demands.
    with PROFILER.phase("cores"):
        cores = combine_cores(
            problem,
            {name: prep.demand for name, prep in preps.items()},
        )
        area_violations = cores.area_violations()
        transition_violations = cores.transition_violations()

    # Stage 4 (per-mode schedule + DVS + timing + per-mode power),
    # served from the sched segment when neither the mode's genes nor
    # the core counts it reads have changed.
    schedules: Dict[str, ModeSchedule] = {}
    timing_violations: Dict[str, Dict[str, float]] = {}
    dynamic: Dict[str, float] = {}
    static: Dict[str, float] = {}
    for mode in problem.omsm.modes:
        prep = preps[mode.name]
        signature = core_signature(problem, mode.name, prep.demand, cores)
        sched_key = (mode.name, slices[mode.name], signature, fingerprint)
        started = time.perf_counter()
        outcome = cache.get_sched(sched_key)
        if outcome is not None:
            PROFILER.add(
                "cache_hit",
                time.perf_counter() - started,
                mode=mode.name,
            )
        else:
            outcome = run_mode(problem, config, context, mode, prep, cores)
            cache.put_sched(sched_key, outcome)
        if outcome.schedule is None:
            # Scheduling-infeasible, like the monolithic early return —
            # but the infeasibility itself came from / went to cache.
            return None
        schedules[mode.name] = outcome.schedule
        if outcome.timing:
            timing_violations[mode.name] = outcome.timing
        dynamic[mode.name] = outcome.dynamic
        static[mode.name] = outcome.static

    # Stage 5+6 (power, penalty fitness): probability weighting happens
    # only here, which is what makes cached values Ψ-independent.
    with PROFILER.phase("power"):
        true_power = weighted_power(problem, dynamic, static)
        if config.use_probabilities:
            optimised_power = true_power
        else:
            optimised_power = weighted_power(
                problem,
                dynamic,
                static,
                problem.omsm.uniform_probability_vector(),
            )

        weights = FitnessWeights(
            area=config.area_weight,
            transition=config.transition_weight,
            timing=config.timing_weight,
        )
        fitness = mapping_fitness(
            problem,
            optimised_power,
            timing_violations,
            area_violations,
            transition_violations,
            weights,
        )

    metrics = ImplementationMetrics(
        average_power=true_power,
        dynamic_power=dynamic,
        static_power=static,
        timing_violation=timing_violations,
        area_violation=area_violations,
        transition_violation=transition_violations,
        fitness=fitness,
    )
    return Implementation(
        problem=problem,
        mapping=mapping,
        cores=cores,
        schedules=schedules,
        metrics=metrics,
    )
