"""Staged incremental evaluation pipeline with a per-mode result cache.

The package splits the monolithic candidate evaluator into explicit
stages (:mod:`repro.eval.stages`), memoises per-mode stage results in a
bounded LRU (:mod:`repro.eval.cache`) and orchestrates both from
:func:`~repro.eval.pipeline.evaluate_mapping_incremental`
(:mod:`repro.eval.pipeline`).  The monolithic path remains reachable via
``SynthesisConfig.mode_cache = False`` and is the pipeline's
bit-identity oracle.
"""

from repro.eval.cache import (
    ModeOutcome,
    ModePrep,
    ModeResultCache,
    config_fingerprint,
    mode_cache_for,
)
from repro.eval.pipeline import evaluate_mapping_incremental
from repro.eval.stages import (
    combine_cores,
    core_signature,
    prepare_mode,
    run_mode,
)

__all__ = [
    "ModeOutcome",
    "ModePrep",
    "ModeResultCache",
    "combine_cores",
    "config_fingerprint",
    "core_signature",
    "evaluate_mapping_incremental",
    "mode_cache_for",
    "prepare_mode",
    "run_mode",
]
