"""Stage functions of the staged evaluation pipeline.

Each function is one explicit stage of the decode → mobility → core
allocation → per-mode {comm mapping, list schedule, DVS} → power →
fitness pipeline (:mod:`repro.eval.pipeline` orchestrates them and owns
the caching).  Every stage replicates the corresponding slice of the
monolithic :func:`repro.synthesis.evaluator.evaluate_mapping` body —
same calls, same float operations, same iteration order — so pipeline
results are bit-identical to the legacy path.  Where a kernel could be
shared it was extracted rather than duplicated
(:func:`repro.mapping.cores.mode_pe_demand`,
:func:`repro.power.energy_model.weighted_power`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.architecture.processing_element import PEKind
from repro.dvs._pv_dvs_reference import (
    reference_scale_schedule,
    reference_uniform_scale_schedule,
)
from repro.dvs.pv_dvs import scale_schedule, uniform_scale_schedule
from repro.engine.decode_cache import DecodeContext
from repro.engine.profile import PROFILER
from repro.errors import SchedulingError
from repro.eval.cache import CoreSignature, ModeDemand, ModeOutcome, ModePrep
from repro.mapping.cores import (
    CoreAllocation,
    _fit_asic,
    _fit_fpga,
    mode_pe_demand,
)
from repro.mapping.encoding import MappingString
from repro.power.energy_model import mode_dynamic_power
from repro.power.shutdown import mode_static_power
from repro.problem import Problem
from repro.scheduling.list_scheduler import schedule_mode
from repro.scheduling.mobility import compute_mobilities
from repro.scheduling.schedule import ModeSchedule
from repro.specification.mode import Mode
from repro.synthesis.config import DvsMethod, SynthesisConfig


def prepare_mode(
    problem: Problem,
    context: Optional[DecodeContext],
    mapping: MappingString,
    mode: Mode,
) -> ModePrep:
    """Mobility stage: mode mapping, ASAP/ALAP mobilities, core demand.

    Pure function of the mode's gene slice (prep cache segment).  The
    mapping/mobility part mirrors the first per-mode loop of the
    monolithic evaluator; the demand part hoists this mode's share of
    ``allocate_cores`` out of the (cross-mode) combine stage — it too
    depends only on this mode's genes.
    """
    technology = problem.technology
    mode_mapping = mapping.mode_mapping(mode.name)
    if context is not None:
        mobilities = context.compute_mobilities(mode.name, mode_mapping)
        mode_data = context.modes[mode.name]
    else:
        mobilities = compute_mobilities(
            mode,
            lambda task, _mode=mode: technology.implementation(
                _mode.task_graph.task(task).task_type,
                mapping.pe_of(_mode.name, task),
            ).exec_time,
        )
        mode_data = None
    demand: ModeDemand = {}
    for pe in problem.architecture.hardware_pes():
        demand[pe.name] = mode_pe_demand(
            problem,
            mode,
            pe,
            mobilities,
            mapping=mapping,
            mode_data=mode_data,
            pe_by_task=mode_mapping if mode_data is not None else None,
        )
    return ModePrep(mode_mapping, mobilities, demand)


def combine_cores(
    problem: Problem, demands: Mapping[str, ModeDemand]
) -> CoreAllocation:
    """Core-allocation stage: recombine cached per-mode demands.

    The only cross-mode coupling of the whole pipeline: ASICs take the
    per-type max over modes (union configuration), FPGAs fit each mode
    separately.  Base/desired dictionaries are assembled in OMSM mode
    order, reproducing ``allocate_cores``'s iteration (and therefore
    greedy fitting) order exactly.
    """
    architecture = problem.architecture
    counts: Dict[str, Dict[str, Dict[str, int]]] = {}
    area_used: Dict[str, float] = {}
    mode_names = problem.omsm.mode_names

    for pe in architecture.hardware_pes():
        base: Dict[str, Dict[str, int]] = {}
        desired: Dict[str, Dict[str, int]] = {}
        for mode in problem.omsm.modes:
            base_counts, desired_counts = demands[mode.name][pe.name]
            base[mode.name] = base_counts
            desired[mode.name] = desired_counts
        if pe.kind is PEKind.ASIC:
            pe_counts, used = _fit_asic(problem, pe, base, desired)
        else:
            pe_counts, used = _fit_fpga(problem, pe, base, desired)
        counts[pe.name] = {
            mode_name: pe_counts.get(mode_name, {})
            for mode_name in mode_names
        }
        area_used[pe.name] = used

    return CoreAllocation(counts=counts, area_used=area_used, _problem=problem)


def core_signature(
    problem: Problem,
    mode_name: str,
    demand: ModeDemand,
    cores: CoreAllocation,
) -> CoreSignature:
    """The allocated core counts this mode's scheduler actually reads.

    The list scheduler queries ``available_cores(pe, mode, type)`` for
    exactly the (hardware PE, task type) pairs that have at least one
    task of the mode mapped there — the key set of the mode's base
    demand.  Restricting the signature to that read set keeps schedule
    cache entries valid across allocation changes the mode cannot
    observe (e.g. an ASIC union core added for another mode's type).
    """
    signature: List[Tuple[str, Tuple[Tuple[str, int], ...]]] = []
    for pe in problem.architecture.hardware_pes():
        base_counts = demand[pe.name][0]
        if not base_counts:
            continue
        counts = cores.counts[pe.name][mode_name]
        signature.append(
            (
                pe.name,
                tuple(
                    sorted(
                        (task_type, counts.get(task_type, 0))
                        for task_type in base_counts
                    )
                ),
            )
        )
    return tuple(signature)


def run_mode(
    problem: Problem,
    config: SynthesisConfig,
    context: Optional[DecodeContext],
    mode: Mode,
    prep: ModePrep,
    cores: CoreAllocation,
) -> ModeOutcome:
    """Per-mode schedule stage: list scheduling, DVS, timing, power.

    Mirrors the monolithic evaluator's second per-mode loop (schedule +
    DVS phases, timing violations) and hoists the mode's share of the
    power breakdown (dynamic and static power are per-mode quantities).
    A :class:`~repro.errors.SchedulingError` yields an infeasible
    outcome — cacheable like any other result.
    """
    schedule: Optional[ModeSchedule]
    with PROFILER.phase("schedule", mode=mode.name):
        try:
            if config.inner_loop_iterations > 0:
                from repro.scheduling.priority_search import (
                    refine_schedule,
                )

                schedule = refine_schedule(
                    problem,
                    mode,
                    prep.mode_mapping,
                    cores,
                    iterations=config.inner_loop_iterations,
                )
            else:
                schedule = schedule_mode(
                    problem,
                    mode,
                    prep.mode_mapping,
                    cores,
                    prep.mobilities,
                    context=context,
                )
        except SchedulingError:
            schedule = None
    if schedule is None:
        return ModeOutcome(None, {}, 0.0, 0.0)
    if config.dvs is not DvsMethod.NONE:
        with PROFILER.phase("dvs", mode=mode.name):
            if config.dvs is DvsMethod.GRADIENT:
                if config.decode_cache:
                    schedule = scale_schedule(
                        problem,
                        mode,
                        schedule,
                        shared_rail=config.dvs_shared_rail,
                        context=context,
                        vector=config.vector_dvs,
                        warm_start=config.dvs_warm_start,
                    )
                else:
                    schedule = reference_scale_schedule(
                        problem,
                        mode,
                        schedule,
                        shared_rail=config.dvs_shared_rail,
                    )
            elif config.decode_cache:
                schedule = uniform_scale_schedule(
                    problem, mode, schedule, context=context
                )
            else:
                schedule = reference_uniform_scale_schedule(
                    problem, mode, schedule
                )
    violations = schedule.timing_violations(
        mode,
        deadlines=(
            context.modes[mode.name].deadlines
            if context is not None
            else None
        ),
    )
    dynamic = mode_dynamic_power(problem, mode.name, schedule)
    static = mode_static_power(problem, schedule)
    return ModeOutcome(schedule, violations, dynamic, static)
