"""Task graphs: the functional specification of a single operational mode.

A task graph ``G_S(T, C)`` (paper Section 2.1.2) is a directed acyclic
graph.  Nodes are :class:`Task` objects — atomic, non-preemptable units of
functionality at a coarse granularity (an FFT, a Huffman decoder, an
IDCT, ...).  Each task carries a *task type*; tasks of identical type can
share a hardware core, which is the central resource-sharing lever of
multi-mode synthesis.  Edges are :class:`CommEdge` objects expressing
precedence constraints together with the amount of data transferred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SpecificationError


@dataclass(frozen=True)
class Task:
    """An atomic unit of functionality inside one operational mode.

    Parameters
    ----------
    name:
        Identifier, unique within the task graph.
    task_type:
        The functional type (``η`` in the paper).  Tasks of the same type
        — within one mode or across modes — may share one hardware core.
    deadline:
        Optional individual deadline ``θ_τ`` in seconds, measured from the
        start of the task-graph iteration.  ``None`` means the task is
        only constrained by the graph repetition period.
    """

    name: str
    task_type: str
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("task name must be non-empty")
        if not self.task_type:
            raise SpecificationError(
                f"task {self.name!r}: task type must be non-empty"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise SpecificationError(
                f"task {self.name!r}: deadline must be positive, "
                f"got {self.deadline}"
            )


@dataclass(frozen=True)
class CommEdge:
    """A data dependency ``γ = (τ_i, τ_j)`` with payload size.

    The source task must finish and transfer ``data_bits`` before the
    destination task may start.  When both tasks are mapped to the same
    processing element the transfer is considered internal (zero time and
    energy, as usual in distributed co-synthesis models).
    """

    src: str
    dst: str
    data_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SpecificationError(
                f"communication edge may not be a self-loop ({self.src!r})"
            )
        if self.data_bits < 0:
            raise SpecificationError(
                f"edge {self.src!r}->{self.dst!r}: negative data size"
            )

    @property
    def key(self) -> Tuple[str, str]:
        """The ``(src, dst)`` pair identifying this edge."""
        return (self.src, self.dst)


class TaskGraph:
    """A directed acyclic graph of tasks and communication edges.

    The graph is immutable after construction and validated eagerly:
    duplicate task names, dangling edge endpoints, duplicate edges and
    cycles all raise :class:`~repro.errors.SpecificationError`.

    Parameters
    ----------
    name:
        Identifier of the graph (usually the mode name).
    tasks:
        The task set ``T``.
    edges:
        The communication/precedence set ``C``.
    """

    def __init__(
        self,
        name: str,
        tasks: Sequence[Task],
        edges: Sequence[CommEdge] = (),
    ) -> None:
        if not name:
            raise SpecificationError("task graph name must be non-empty")
        self.name = name
        self._tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.name in self._tasks:
                raise SpecificationError(
                    f"graph {name!r}: duplicate task name {task.name!r}"
                )
            self._tasks[task.name] = task
        self._edges: Dict[Tuple[str, str], CommEdge] = {}
        self._succ: Dict[str, List[str]] = {t: [] for t in self._tasks}
        self._pred: Dict[str, List[str]] = {t: [] for t in self._tasks}
        for edge in edges:
            for endpoint in edge.key:
                if endpoint not in self._tasks:
                    raise SpecificationError(
                        f"graph {name!r}: edge references unknown task "
                        f"{endpoint!r}"
                    )
            if edge.key in self._edges:
                raise SpecificationError(
                    f"graph {name!r}: duplicate edge {edge.src!r}->{edge.dst!r}"
                )
            self._edges[edge.key] = edge
            self._succ[edge.src].append(edge.dst)
            self._pred[edge.dst].append(edge.src)
        self._topo_order = self._compute_topological_order()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def tasks(self) -> Tuple[Task, ...]:
        """All tasks, in insertion order."""
        return tuple(self._tasks.values())

    @property
    def edges(self) -> Tuple[CommEdge, ...]:
        """All communication edges, in insertion order."""
        return tuple(self._edges.values())

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(self._tasks)

    def task(self, name: str) -> Task:
        """Return the task called ``name`` or raise ``SpecificationError``."""
        try:
            return self._tasks[name]
        except KeyError:
            raise SpecificationError(
                f"graph {self.name!r}: no task named {name!r}"
            ) from None

    def edge(self, src: str, dst: str) -> CommEdge:
        """Return the edge ``src -> dst`` or raise ``SpecificationError``."""
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise SpecificationError(
                f"graph {self.name!r}: no edge {src!r}->{dst!r}"
            ) from None

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    def successors(self, name: str) -> Tuple[str, ...]:
        """Names of the direct successors of task ``name``."""
        self.task(name)
        return tuple(self._succ[name])

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Names of the direct predecessors of task ``name``."""
        self.task(name)
        return tuple(self._pred[name])

    def in_edges(self, name: str) -> Tuple[CommEdge, ...]:
        """Edges entering task ``name``."""
        return tuple(self._edges[(p, name)] for p in self.predecessors(name))

    def out_edges(self, name: str) -> Tuple[CommEdge, ...]:
        """Edges leaving task ``name``."""
        return tuple(self._edges[(name, s)] for s in self.successors(name))

    def sources(self) -> Tuple[str, ...]:
        """Tasks with no predecessors (entry tasks)."""
        return tuple(t for t in self._tasks if not self._pred[t])

    def sinks(self) -> Tuple[str, ...]:
        """Tasks with no successors (exit tasks)."""
        return tuple(t for t in self._tasks if not self._succ[t])

    def task_types(self) -> Set[str]:
        """The task-type set ``Γ`` of this graph."""
        return {task.task_type for task in self._tasks.values()}

    def tasks_of_type(self, task_type: str) -> Tuple[Task, ...]:
        """All tasks whose type equals ``task_type``."""
        return tuple(
            t for t in self._tasks.values() if t.task_type == task_type
        )

    def topological_order(self) -> Tuple[str, ...]:
        """A fixed topological ordering of task names."""
        return self._topo_order

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: object) -> bool:
        return name in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph({self.name!r}, tasks={len(self._tasks)}, "
            f"edges={len(self._edges)})"
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def _compute_topological_order(self) -> Tuple[str, ...]:
        """Kahn's algorithm; raises on cycles.

        Ties are broken by insertion order so the result is deterministic
        for a given construction sequence.
        """
        in_degree = {name: len(self._pred[name]) for name in self._tasks}
        ready = [name for name in self._tasks if in_degree[name] == 0]
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in self._succ[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            stuck = sorted(n for n, d in in_degree.items() if d > 0)
            raise SpecificationError(
                f"graph {self.name!r}: cycle detected involving {stuck}"
            )
        return tuple(order)

    def depth(self) -> int:
        """Length (in tasks) of the longest path through the graph."""
        longest: Dict[str, int] = {}
        for name in self._topo_order:
            preds = self._pred[name]
            longest[name] = 1 + max(
                (longest[p] for p in preds), default=0
            )
        return max(longest.values(), default=0)

    def ancestors(self, name: str) -> Set[str]:
        """All transitive predecessors of ``name`` (excluding itself)."""
        self.task(name)
        seen: Set[str] = set()
        stack = list(self._pred[name])
        while stack:
            current = stack.pop()
            if current not in seen:
                seen.add(current)
                stack.extend(self._pred[current])
        return seen

    def descendants(self, name: str) -> Set[str]:
        """All transitive successors of ``name`` (excluding itself)."""
        self.task(name)
        seen: Set[str] = set()
        stack = list(self._succ[name])
        while stack:
            current = stack.pop()
            if current not in seen:
                seen.add(current)
                stack.extend(self._succ[current])
        return seen

    def independent(self, first: str, second: str) -> bool:
        """True if neither task transitively precedes the other.

        Independent tasks may execute in parallel on hardware resources;
        this predicate drives the mobility-guided extra-core allocation
        of the outer synthesis loop.
        """
        if first == second:
            return False
        return (
            second not in self.descendants(first)
            and second not in self.ancestors(first)
        )
