"""Application specification model.

A multi-mode application is captured as an *operational mode state
machine* (OMSM, paper Section 2.1): a top-level finite state machine
whose states are operational :class:`~repro.specification.mode.Mode`
objects and whose edges are :class:`~repro.specification.omsm.ModeTransition`
objects carrying maximal transition times.  The functionality of each
mode is a :class:`~repro.specification.task_graph.TaskGraph` whose nodes
are typed :class:`~repro.specification.task_graph.Task` objects and whose
edges are :class:`~repro.specification.task_graph.CommEdge` data
dependencies.
"""

from repro.specification.task_graph import CommEdge, Task, TaskGraph
from repro.specification.mode import Mode
from repro.specification.omsm import OMSM, ModeTransition

__all__ = [
    "CommEdge",
    "Mode",
    "ModeTransition",
    "OMSM",
    "Task",
    "TaskGraph",
]
