"""The operational mode state machine (OMSM) — the top-level model.

The OMSM ``ϒ(Ω, Θ)`` (paper Section 2.1.1) is a directed cyclic graph:
nodes are operational modes, edges are mode transitions annotated with a
maximal transition time ``t_T^max`` that any implementation must respect
(FPGA reconfiguration between modes consumes time).  Modes are mutually
exclusive — exactly one is active at any instant — and each carries an
execution probability; the probabilities over all modes sum to one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Set, Tuple

from repro.errors import SpecificationError
from repro.specification.mode import Mode

#: Tolerance used when checking that mode probabilities sum to one.
_PROBABILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ModeTransition:
    """A directed transition ``T = (O_x, O_y)`` with time limit.

    ``max_time`` is ``t_T^max``: the reconfiguration performed while
    switching from ``src`` to ``dst`` (e.g. reloading FPGA cores) must
    complete within this bound.  ``math.inf`` means unconstrained.
    """

    src: str
    dst: str
    max_time: float = math.inf

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SpecificationError(
                f"mode transition may not be a self-loop ({self.src!r})"
            )
        if self.max_time <= 0:
            raise SpecificationError(
                f"transition {self.src!r}->{self.dst!r}: max_time must be "
                f"positive, got {self.max_time}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)


class OMSM:
    """An operational mode state machine: modes + transitions.

    Parameters
    ----------
    name:
        Application identifier.
    modes:
        The mode set ``Ω``.  Probabilities must sum to one (within a
        small tolerance); mode names must be unique.
    transitions:
        The transition set ``Θ``.  Endpoints must name existing modes.
    normalize:
        When true, mode probabilities are rescaled to sum exactly to one
        instead of being validated strictly.  Useful for specs quoted
        with rounded percentages (the paper's smart phone example quotes
        probabilities that sum to 1.00 only after rounding).
    """

    def __init__(
        self,
        name: str,
        modes: Sequence[Mode],
        transitions: Sequence[ModeTransition] = (),
        normalize: bool = False,
    ) -> None:
        if not name:
            raise SpecificationError("OMSM name must be non-empty")
        if not modes:
            raise SpecificationError(f"OMSM {name!r}: needs at least one mode")
        self.name = name
        self._modes: Dict[str, Mode] = {}
        for mode in modes:
            if mode.name in self._modes:
                raise SpecificationError(
                    f"OMSM {name!r}: duplicate mode name {mode.name!r}"
                )
            self._modes[mode.name] = mode
        total = sum(m.probability for m in modes)
        if normalize:
            if total <= 0:
                raise SpecificationError(
                    f"OMSM {name!r}: probabilities sum to {total}; "
                    "cannot normalise"
                )
            for mode in self._modes.values():
                mode.probability /= total
        elif abs(total - 1.0) > _PROBABILITY_TOLERANCE:
            raise SpecificationError(
                f"OMSM {name!r}: mode probabilities sum to {total:.6f}, "
                "expected 1.0 (pass normalize=True to rescale)"
            )
        self._transitions: Dict[Tuple[str, str], ModeTransition] = {}
        for transition in transitions:
            for endpoint in transition.key:
                if endpoint not in self._modes:
                    raise SpecificationError(
                        f"OMSM {name!r}: transition references unknown mode "
                        f"{endpoint!r}"
                    )
            if transition.key in self._transitions:
                raise SpecificationError(
                    f"OMSM {name!r}: duplicate transition "
                    f"{transition.src!r}->{transition.dst!r}"
                )
            self._transitions[transition.key] = transition

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def modes(self) -> Tuple[Mode, ...]:
        """All modes, in insertion order."""
        return tuple(self._modes.values())

    @property
    def mode_names(self) -> Tuple[str, ...]:
        return tuple(self._modes)

    @property
    def transitions(self) -> Tuple[ModeTransition, ...]:
        """All transitions, in insertion order."""
        return tuple(self._transitions.values())

    def mode(self, name: str) -> Mode:
        """Return the mode called ``name`` or raise ``SpecificationError``."""
        try:
            return self._modes[name]
        except KeyError:
            raise SpecificationError(
                f"OMSM {self.name!r}: no mode named {name!r}"
            ) from None

    def transition(self, src: str, dst: str) -> ModeTransition:
        """Return transition ``src -> dst`` or raise ``SpecificationError``."""
        try:
            return self._transitions[(src, dst)]
        except KeyError:
            raise SpecificationError(
                f"OMSM {self.name!r}: no transition {src!r}->{dst!r}"
            ) from None

    def has_transition(self, src: str, dst: str) -> bool:
        return (src, dst) in self._transitions

    def outgoing(self, mode_name: str) -> Tuple[ModeTransition, ...]:
        """Transitions leaving ``mode_name``."""
        self.mode(mode_name)
        return tuple(
            t for t in self._transitions.values() if t.src == mode_name
        )

    def incoming(self, mode_name: str) -> Tuple[ModeTransition, ...]:
        """Transitions entering ``mode_name``."""
        self.mode(mode_name)
        return tuple(
            t for t in self._transitions.values() if t.dst == mode_name
        )

    def __len__(self) -> int:
        return len(self._modes)

    def __iter__(self) -> Iterator[Mode]:
        return iter(self._modes.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OMSM({self.name!r}, modes={len(self._modes)}, "
            f"transitions={len(self._transitions)})"
        )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    def all_task_types(self) -> Set[str]:
        """Union of the task-type sets of every mode."""
        types: Set[str] = set()
        for mode in self._modes.values():
            types |= mode.task_graph.task_types()
        return types

    def shared_task_types(self) -> Set[str]:
        """Task types occurring in two or more modes.

        These are the types for which cross-mode hardware sharing is
        possible — the distinctive multi-mode opportunity of paper
        Section 2.1.2.
        """
        seen: Dict[str, int] = {}
        for mode in self._modes.values():
            for task_type in mode.task_graph.task_types():
                seen[task_type] = seen.get(task_type, 0) + 1
        return {t for t, count in seen.items() if count >= 2}

    def probability_vector(self) -> Dict[str, float]:
        """Mapping from mode name to execution probability ``Ψ``."""
        return {m.name: m.probability for m in self._modes.values()}

    def uniform_probability_vector(self) -> Dict[str, float]:
        """Uniform probabilities ``Ψ = 1/|Ω|``.

        This is what the paper's baseline — synthesis *neglecting* mode
        execution probabilities — effectively optimises for.
        """
        uniform = 1.0 / len(self._modes)
        return {name: uniform for name in self._modes}

    def with_probabilities(
        self, probabilities: "Dict[str, float]"
    ) -> "OMSM":
        """A copy of this OMSM with a different Ψ vector.

        The structure (modes, task graphs, transitions) is shared; only
        the execution probabilities change.  This is the entry point of
        online Ψ-adaptation: an observed usage profile becomes a new
        synthesis target without touching the specification.  The
        vector must cover every mode; it is normalised to sum to one.
        """
        missing = [
            name for name in self._modes if name not in probabilities
        ]
        if missing:
            raise SpecificationError(
                f"OMSM {self.name!r}: probability vector misses modes "
                f"{missing}"
            )
        modes = [
            Mode(
                name=mode.name,
                task_graph=mode.task_graph,
                probability=max(0.0, probabilities[mode.name]),
                period=mode.period,
            )
            for mode in self._modes.values()
        ]
        return OMSM(
            self.name,
            modes,
            list(self._transitions.values()),
            normalize=True,
        )
