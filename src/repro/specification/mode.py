"""Operational modes: a task graph plus timing and probability attributes.

Each mode ``O`` of the OMSM carries its functional specification (a
:class:`~repro.specification.task_graph.TaskGraph`), its repetition
period ``φ`` (the *hyper-period* over which average dynamic power is
computed) and its execution probability ``Ψ_O`` — the fraction of the
device's operational lifetime spent in this mode (paper Section 2.1.1).
"""

from __future__ import annotations


from repro.errors import SpecificationError
from repro.specification.task_graph import TaskGraph


class Mode:
    """One operational mode of a multi-mode application.

    Parameters
    ----------
    name:
        Mode identifier, unique within the OMSM.
    task_graph:
        Functional specification of the mode.
    probability:
        Execution probability ``Ψ_O`` in ``[0, 1]``.  The probabilities
        of all modes of an OMSM must sum to one (validated by
        :class:`~repro.specification.omsm.OMSM`).
    period:
        Repetition period ``φ`` of the task graph in seconds.  Acts both
        as an implicit deadline on every task and as the hyper-period
        used to convert per-iteration energy into average power.
    """

    def __init__(
        self,
        name: str,
        task_graph: TaskGraph,
        probability: float,
        period: float,
    ) -> None:
        if not name:
            raise SpecificationError("mode name must be non-empty")
        if not 0.0 <= probability <= 1.0:
            raise SpecificationError(
                f"mode {name!r}: probability must lie in [0, 1], "
                f"got {probability}"
            )
        if period <= 0:
            raise SpecificationError(
                f"mode {name!r}: period must be positive, got {period}"
            )
        for task in task_graph:
            if task.deadline is not None and task.deadline > period:
                raise SpecificationError(
                    f"mode {name!r}: task {task.name!r} deadline "
                    f"{task.deadline} exceeds mode period {period}"
                )
        self.name = name
        self.task_graph = task_graph
        self.probability = probability
        self.period = period

    def effective_deadline(self, task_name: str) -> float:
        """``min(θ_τ, φ)`` — the binding latest-finish time of a task."""
        task = self.task_graph.task(task_name)
        if task.deadline is None:
            return self.period
        return min(task.deadline, self.period)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mode({self.name!r}, Ψ={self.probability}, φ={self.period}, "
            f"tasks={len(self.task_graph)})"
        )
